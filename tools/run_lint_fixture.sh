#!/bin/sh
# Smoke-checks `karousos analyze` against the checked-in known-bad advice
# fixture: the run must exit nonzero and report both planted rule IDs
# (KAR-ADV-003 dangling prec, KAR-ADV-010 write-order cycle).
#
#   usage: run_lint_fixture.sh <karousos-binary> <fixture-dir>
set -u

bin="$1"
fixtures="$2"

out="$("$bin" analyze --trace "$fixtures/lint_bad.trace" --advice "$fixtures/lint_bad.advice")"
status=$?
printf '%s\n' "$out"

if [ "$status" -eq 0 ]; then
  echo "FAIL: analyze exited 0 on a known-bad fixture" >&2
  exit 1
fi
for rule in KAR-ADV-003 KAR-ADV-010; do
  case "$out" in
    *"$rule"*) ;;
    *)
      echo "FAIL: analyze output is missing $rule" >&2
      exit 1
      ;;
  esac
done
echo "lint fixture check passed (exit $status, both rules reported)"
