// Regenerates the record-path wire-format golden fixtures
// (tests/fixtures/record_golden/). Run manually ONLY on an intentional wire
// format change; the committed fixtures pin the advice and segment bytes the
// collector produced before the streaming AdviceBuilder rewrite, and
// tests/advice_golden_test.cc fails if the rewritten record path ever drifts
// from them.
//
// Usage: make_record_golden <output-dir>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/server/rollover.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("  %s: %zu bytes\n", path.c_str(), bytes.size());
  return true;
}

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  if (name == "auction") {
    return MakeAuctionApp();
  }
  return MakeWikiApp();
}

// One fixture workload per app family; small enough to commit, concurrent
// enough (connections > 1) that the advice contains R-concurrent log entries,
// back-filled writes, nondeterminism records, and multi-epoch references.
struct FixtureSpec {
  const char* name;
  const char* app;
  WorkloadKind kind;
  size_t requests;
  int concurrency;
  uint64_t epoch_requests;  // For the segment-stream fixtures.
};

constexpr FixtureSpec kFixtures[] = {
    {"stacks120", "stacks", WorkloadKind::kMixed, 120, 10, 7},
    {"motd60", "motd", WorkloadKind::kWriteHeavy, 60, 6, 13},
    // Hot-key contention: aborted transactions, retries, and cross-epoch
    // transaction windows in the advice bytes.
    {"auction90", "auction", WorkloadKind::kAuctionMix, 90, 12, 9},
};

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  for (const FixtureSpec& spec : kFixtures) {
    WorkloadConfig wl;
    wl.app = spec.app;
    wl.kind = spec.kind;
    wl.requests = spec.requests;
    wl.seed = 7;
    wl.connections = spec.concurrency;
    std::vector<Value> inputs = GenerateWorkload(wl);

    AppSpec app = MakeApp(spec.app);
    ServerConfig config;
    config.concurrency = spec.concurrency;
    config.seed = 7;
    config.epoch_requests = spec.epoch_requests;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(inputs);

    std::printf("[%s] %zu requests, %zu var log entries\n", spec.name, inputs.size(),
                run.var_log_entries);
    ByteWriter advice_bytes;
    run.advice.Serialize(&advice_bytes);
    ByteWriter trace_bytes;
    run.trace.Serialize(&trace_bytes);
    const std::string base = dir + "/" + spec.name;
    if (!WriteFile(base + ".advice", advice_bytes.bytes()) ||
        !WriteFile(base + ".trace", trace_bytes.bytes()) ||
        !WriteFile(base + ".advice_segments", run.advice_segments) ||
        !WriteFile(base + ".trace_segments", run.trace_segments)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
