// karousos — command-line front end for the audit pipeline.
//
//   karousos serve  --app wiki --workload mixed --requests 600 --concurrency 15
//                   --out-trace trace.bin --out-advice advice.bin
//   karousos audit  --app wiki --trace trace.bin --advice advice.bin [--isolation rc]
//   karousos tamper --trace trace.bin --out trace_forged.bin
//   karousos inspect --advice advice.bin
//
// `serve` runs the instrumented server and writes the collector's trace and
// the server's advice in the wire format; `audit` replays them through the
// verifier; `tamper` forges the first response (for demos); `inspect` prints
// the advice composition; `analyze` runs the analysis layer alone — the
// structural advice linter over (trace, advice) files, or (with --races) the
// §5 happens-before race detector over a fresh in-process serve.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <algorithm>

#include "src/analysis/check.h"
#include "src/analysis/lint.h"
#include "src/analysis/race.h"
#include "src/audit/audit.h"
#include "src/audit/stream.h"
#include "src/common/json.h"
#include "src/common/segment.h"
#include "src/net/wire_server.h"
#include "src/server/rollover.h"
#include "src/server/shard.h"
#include "src/verifier/shard_audit.h"
#include "src/workload/wire_load.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  karousos serve  --app <motd|stacks|wiki|auction|mixed> [--workload <reads|writes|mixed>]\n"
               "                  [--requests N] [--concurrency C] [--seed S] [--mode karousos|orochi]\n"
               "                  [--isolation ser|rc|ru] [--inputs FILE]\n"
               "                  --out-trace FILE --out-advice FILE\n"
               "                  [--out-segments DIR --epoch-size N] [--compress STAGES]\n"
               "      --workload: request mix — reads (90/10), writes (10/90), or mixed\n"
               "      (50/50; wiki/auction/mixed apps use their native mixes)\n"
               "      --requests/--concurrency/--seed: workload size, in-flight window,\n"
               "      and the shared workload+scheduler seed\n"
               "      --mode: advice collection — karousos (default) or the orochi\n"
               "      baseline; --isolation: store isolation level\n"
               "      --inputs: serve a JSON-lines request stream instead of --workload\n"
               "      --out-segments: also (or instead) write the epoch-segmented KSEG\n"
               "      containers DIR/trace.kseg and DIR/advice.kseg\n"
               "      --compress: storage-class codec stages for the KSEG containers —\n"
               "      'all' or a comma list of lanes,dict,block (emits format v2 frames;\n"
               "      'none' = raw v1, the default)\n"
               "  karousos serve  --app <...> --listen <unix:/path|host:port>\n"
               "                  [--net-workers N] [--net-batch] [--out-shards DIR]\n"
               "                  [--concurrency C] [--seed S] [--mode ...] [--isolation ...]\n"
               "      network front-end: accept framed requests over TCP or a unix\n"
               "      socket instead of generating a workload in-process; runs until a\n"
               "      client shutdown frame arrives (e.g. from `karousos load`)\n"
               "      --net-workers: worker event loops; worker w is its own record\n"
               "      shard, served with seed S+w (connections round-robin by accept)\n"
               "      --net-batch: collect requests until clients half-close, then serve\n"
               "      each shard in client-sequence order (byte-deterministic shards)\n"
               "      --out-shards: write DIR/shard<w>.trace and DIR/shard<w>.advice,\n"
               "      each auditable with `karousos audit --seed S+w`\n"
               "  karousos load   --connect <unix:/path|host:port> --app <...> [--workload ...]\n"
               "                  [--requests N] [--connections C] [--seed S] [--net-batch]\n"
               "                  [--arrival closed|uniform|bursty|diurnal] [--rate R]\n"
               "                  [--pipeline N]\n"
               "      open-loop socket client: replays the generated workload against a\n"
               "      `serve --listen` server (request i rides connection i mod C) and\n"
               "      sends the drain frame when done; prints throughput and latency\n"
               "      --arrival/--rate: open-loop pacing (closed = back-to-back)\n"
               "      --pipeline: in-flight window per connection (1 = strict RPC,\n"
               "      N = pipelined; default 0 = unbounded); every response must come\n"
               "      back on the connection that sent its request\n"
               "      --net-batch: write everything up front + half-close (pairs with a\n"
               "      `serve --net-batch` server)\n"
               "  karousos audit  --app <motd|stacks|wiki|auction|mixed> --trace FILE --advice FILE\n"
               "                  [--segments DIR] [--no-prescreen]\n"
               "                  [--isolation ser|rc|ru] [--threads N] [--profile]\n"
               "                  [--epoch-size N] [--checkpoint FILE] [--resume FILE]\n"
               "      --segments: audit DIR/trace.kseg + DIR/advice.kseg (KSEG containers\n"
               "      are also auto-detected on --trace/--advice; --epoch-size required)\n"
               "      --no-prescreen: disable the static fast-reject pre-screen (same\n"
               "      verdict, purely dynamic rejection path)\n"
               "      --threads: audit-group parallelism (1 = serial, 0 = all hardware\n"
               "      threads); the verdict is identical for every value\n"
               "      --profile: print phase-timing JSON (Preprocess/ReExec/Postprocess)\n"
               "      --epoch-size: stream the audit in epochs of N requests (0 = one\n"
               "      epoch); same verdict as the one-shot audit, bounded advice memory\n"
               "      --checkpoint: save the carry state to FILE after every epoch\n"
               "      --resume: restore the carry state from FILE and continue from the\n"
               "      first unaudited epoch\n"
               "  karousos shard  --trace FILE --advice FILE --shards K --out-dir DIR\n"
               "                  [--epoch-size N] [--shard-mode hash|range] [--compress STAGES]\n"
               "      partition one run into K self-contained shard files DIR/shard<i>.kseg\n"
               "      (group-atomic by request hash, or contiguous rid ranges); each shard\n"
               "      carries the replicated trace, its advice slice, and a cross-shard\n"
               "      boundary manifest, and audits independently with `audit-shard`\n"
               "  karousos audit-shard --app <...> --shard-file FILE [--out ARTIFACT]\n"
               "                  [--isolation ser|rc|ru] [--threads N] [--no-prescreen]\n"
               "      audit one shard in isolation (full verifier; epochs and threads\n"
               "      compose) and write its verdict artifact for `audit-merge`\n"
               "  karousos audit-merge --in-dir DIR | --artifact FILE [--artifact FILE ...]\n"
               "      deterministically merge K shard-verdict artifacts into the run's\n"
               "      verdict: cross-shard rid coverage, write-order stitching, continuity\n"
               "      confirmation, write-chain stitching, and the global isolation check\n"
               "      (--in-dir merges every *.artifact in DIR)\n"
               "  karousos tamper --trace FILE --out FILE\n"
               "  karousos inspect --advice FILE | --trace FILE\n"
               "      advice/trace files print composition; segment containers print\n"
               "      per-epoch frame headers (kind, epoch, payload size, CRC)\n"
               "  karousos check  --segments DIR | --trace FILE --advice FILE\n"
               "                  [--epoch-size N]\n"
               "      streaming static model check (KAR-ADV + KAR-SEG rules), no\n"
               "      re-execution: KSEG containers need --epoch-size; monolithic files\n"
               "      are sliced at --epoch-size (default 0 = one epoch); exit 1 on reject\n"
               "  karousos analyze --trace FILE --advice FILE [--epoch-size N]\n"
               "      lint the advice against the trace; segment containers run the\n"
               "      streaming model check instead; exit 1 on findings\n"
               "  karousos analyze --races --app <motd|stacks|wiki|auction|mixed> [--workload ...]\n"
               "                  [--requests N] [--concurrency C] [--seed S]\n"
               "      serve in-process and race-check untracked accesses; exit 1 on findings\n");
  return 2;
}

std::optional<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

struct Args {
  std::string command;
  std::string app = "motd";
  std::string workload = "mixed";
  std::string mode = "karousos";
  std::string isolation = "ser";
  std::string trace_path;
  std::string advice_path;
  std::string out_path;
  std::string inputs_path;  // JSON-lines request stream (overrides --workload).
  std::string checkpoint_path;
  std::string resume_path;
  std::string segments_dir;
  std::string out_segments_dir;
  std::string compress;  // "", "none", "all", or comma list of lanes,dict,block.
  size_t requests = 200;
  int concurrency = 8;
  uint64_t seed = 1;
  unsigned threads = 1;
  uint64_t epoch_size = 0;
  bool epoch_size_set = false;
  bool races = false;
  bool profile = false;
  bool no_prescreen = false;
  // Network front-end (serve --listen / load --connect).
  std::string listen;
  std::string connect;
  std::string out_shards_dir;
  size_t net_workers = 1;
  bool net_batch = false;
  size_t connections = 1;
  std::string arrival = "closed";
  double rate = 2000.0;
  size_t pipeline = 0;  // load: in-flight window per connection (0 = unbounded).
  // Shard-axis audit (shard / audit-shard / audit-merge).
  uint32_t shards = 1;
  std::string shard_mode = "hash";
  std::string out_dir;
  std::string shard_file;
  std::string in_dir;
  std::vector<std::string> artifact_paths;
};

std::optional<Args> Parse(int argc, char** argv) {
  if (argc < 2) {
    return std::nullopt;
  }
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc;) {
    std::string flag = argv[i];
    if (flag == "--races") {
      args.races = true;
      ++i;
      continue;
    }
    if (flag == "--profile") {
      args.profile = true;
      ++i;
      continue;
    }
    if (flag == "--no-prescreen") {
      args.no_prescreen = true;
      ++i;
      continue;
    }
    if (flag == "--net-batch") {
      args.net_batch = true;
      ++i;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag '%s' needs a value\n", flag.c_str());
      return std::nullopt;
    }
    std::string value = argv[i + 1];
    i += 2;
    if (flag == "--app") {
      args.app = value;
    } else if (flag == "--workload") {
      args.workload = value;
    } else if (flag == "--mode") {
      args.mode = value;
    } else if (flag == "--isolation") {
      args.isolation = value;
    } else if (flag == "--trace") {
      args.trace_path = value;
    } else if (flag == "--advice") {
      args.advice_path = value;
    } else if (flag == "--out-trace") {
      args.trace_path = value;
    } else if (flag == "--out-advice") {
      args.advice_path = value;
    } else if (flag == "--out") {
      args.out_path = value;
    } else if (flag == "--inputs") {
      args.inputs_path = value;
    } else if (flag == "--requests") {
      args.requests = static_cast<size_t>(std::stoul(value));
    } else if (flag == "--concurrency") {
      args.concurrency = std::stoi(value);
    } else if (flag == "--seed") {
      args.seed = std::stoull(value);
    } else if (flag == "--threads") {
      args.threads = static_cast<unsigned>(std::stoul(value));
    } else if (flag == "--epoch-size") {
      args.epoch_size = std::stoull(value);
      args.epoch_size_set = true;
    } else if (flag == "--checkpoint") {
      args.checkpoint_path = value;
    } else if (flag == "--resume") {
      args.resume_path = value;
    } else if (flag == "--segments") {
      args.segments_dir = value;
    } else if (flag == "--out-segments") {
      args.out_segments_dir = value;
    } else if (flag == "--compress") {
      args.compress = value;
    } else if (flag == "--listen") {
      args.listen = value;
    } else if (flag == "--connect") {
      args.connect = value;
    } else if (flag == "--out-shards") {
      args.out_shards_dir = value;
    } else if (flag == "--net-workers") {
      args.net_workers = static_cast<size_t>(std::stoul(value));
    } else if (flag == "--connections") {
      args.connections = static_cast<size_t>(std::stoul(value));
    } else if (flag == "--arrival") {
      args.arrival = value;
    } else if (flag == "--rate") {
      args.rate = std::stod(value);
    } else if (flag == "--pipeline") {
      args.pipeline = static_cast<size_t>(std::stoul(value));
    } else if (flag == "--shards") {
      args.shards = static_cast<uint32_t>(std::stoul(value));
    } else if (flag == "--shard-mode") {
      args.shard_mode = value;
    } else if (flag == "--out-dir") {
      args.out_dir = value;
    } else if (flag == "--shard-file") {
      args.shard_file = value;
    } else if (flag == "--in-dir") {
      args.in_dir = value;
    } else if (flag == "--artifact") {
      args.artifact_paths.push_back(value);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return std::nullopt;
    }
  }
  return args;
}

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  if (name == "wiki") {
    return MakeWikiApp();
  }
  if (name == "auction") {
    return MakeAuctionApp();
  }
  if (name == "mixed") {
    return MakeMixedApp();
  }
  std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
  std::exit(2);
}

KsegCompression ParseCompression(const std::string& s) {
  KsegCompression c;
  if (s.empty() || s == "none") {
    return c;
  }
  if (s == "all") {
    return KsegCompression::All();
  }
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    std::string stage = s.substr(start, comma == std::string::npos ? comma : comma - start);
    if (stage == "lanes") {
      c.lanes = true;
    } else if (stage == "dict") {
      c.dict = true;
    } else if (stage == "block") {
      c.block = true;
    } else {
      std::fprintf(stderr, "unknown --compress stage '%s' (want all, none, or a comma list "
                           "of lanes,dict,block)\n", stage.c_str());
      std::exit(2);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return c;
}

IsolationLevel ParseIsolation(const std::string& s) {
  if (s == "ser") {
    return IsolationLevel::kSerializable;
  }
  if (s == "rc") {
    return IsolationLevel::kReadCommitted;
  }
  if (s == "ru") {
    return IsolationLevel::kReadUncommitted;
  }
  std::fprintf(stderr, "unknown isolation level '%s'\n", s.c_str());
  std::exit(2);
}

// Shared serve/load/analyze plumbing: one place maps CLI args to the
// workload and server configs and runs an in-process serve.

WorkloadConfig MakeWorkloadConfig(const Args& args) {
  WorkloadConfig wl;
  wl.app = args.app;
  wl.kind = args.workload == "reads"    ? WorkloadKind::kReadHeavy
            : args.workload == "writes" ? WorkloadKind::kWriteHeavy
            : args.app == "wiki"        ? WorkloadKind::kWikiMix
            : args.app == "auction"     ? WorkloadKind::kAuctionMix
            : args.app == "mixed"       ? WorkloadKind::kMixedApps
                                        : WorkloadKind::kMixed;
  wl.requests = args.requests;
  wl.seed = args.seed;
  wl.connections = args.concurrency;
  return wl;
}

ServerConfig MakeServerConfig(const Args& args) {
  ServerConfig config;
  config.mode = args.mode == "orochi" ? CollectMode::kOrochi : CollectMode::kKarousos;
  config.isolation = ParseIsolation(args.isolation);
  config.concurrency = args.concurrency;
  config.seed = args.seed;
  return config;
}

ServerRunResult RunServe(const Args& args, const AppSpec& app,
                         const std::vector<Value>& inputs) {
  Server server(*app.program, MakeServerConfig(args));
  return server.Run(inputs);
}

// serve --listen: the event-loop network front-end. Runs until a client
// shutdown frame drains the server, then reports per-shard results and
// optionally writes each shard's trace/advice for independent auditing.
int CmdServeWire(const Args& args) {
  AppSpec app = MakeApp(args.app);
  WireServerConfig wc;
  wc.listen = args.listen;
  wc.workers = args.net_workers;
  wc.batch = args.net_batch;
  wc.server = MakeServerConfig(args);
  WireServer server(*app.program, wc);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "serve --listen: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on %s (%zu worker%s, %s mode, concurrency %d, seed %llu)\n",
              server.bound_address().c_str(), wc.workers, wc.workers == 1 ? "" : "s",
              wc.batch ? "batch" : "live", wc.server.concurrency,
              static_cast<unsigned long long>(wc.server.seed));
  std::fflush(stdout);
  WireServerReport report = server.Wait();
  if (!report.ok) {
    std::fprintf(stderr, "serve --listen: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("drained: %zu connections, %zu requests, %zu responses, "
              "%zu protocol errors, %llu read-disables, peak buffered %zu B\n",
              report.connections, report.requests, report.responses, report.protocol_errors,
              static_cast<unsigned long long>(report.read_disables),
              report.peak_connection_buffered_bytes);
  for (const WireShardResult& shard : report.shards) {
    std::printf("shard %zu (seed %llu): %zu connections, %zu requests, "
                "%zu var-log entries, %zu txns\n",
                shard.worker, static_cast<unsigned long long>(wc.server.seed + shard.worker),
                shard.connections, shard.requests, shard.run.advice.var_log_entry_count(),
                shard.run.advice.tx_logs.size());
  }
  if (!args.out_shards_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.out_shards_dir, ec);
    for (const WireShardResult& shard : report.shards) {
      ByteWriter trace_bytes;
      shard.run.trace.Serialize(&trace_bytes);
      ByteWriter advice_bytes;
      shard.run.advice.Serialize(&advice_bytes);
      const std::string base = args.out_shards_dir + "/shard" + std::to_string(shard.worker);
      if (!WriteFile(base + ".trace", trace_bytes.bytes()) ||
          !WriteFile(base + ".advice", advice_bytes.bytes())) {
        std::fprintf(stderr, "failed to write %s.{trace,advice}\n", base.c_str());
        return 1;
      }
      std::printf("shard %zu -> %s.trace (%zu B), %s.advice (%zu B)\n", shard.worker,
                  base.c_str(), trace_bytes.size(), base.c_str(), advice_bytes.size());
    }
  }
  return 0;
}

// load --connect: open-loop socket client for a serve --listen server.
int CmdLoad(const Args& args) {
  if (args.connect.empty()) {
    return Usage();
  }
  WorkloadConfig wl = MakeWorkloadConfig(args);
  wl.arrival = args.arrival == "uniform"   ? ArrivalPattern::kUniform
               : args.arrival == "bursty"  ? ArrivalPattern::kBursty
               : args.arrival == "diurnal" ? ArrivalPattern::kDiurnal
                                           : ArrivalPattern::kClosed;
  wl.mean_rate = args.rate;
  OpenLoopWorkload workload = GenerateOpenLoop(wl);

  WireLoadOptions options;
  options.connections = args.connections;
  options.batch = args.net_batch;
  options.pipeline = args.pipeline;
  WireLoadReport report = RunWireLoad(args.connect, workload, options);
  if (!report.ok) {
    std::fprintf(stderr, "load: %s\n", report.error.c_str());
    return 1;
  }
  std::vector<double> sorted = report.latency_seconds;
  std::sort(sorted.begin(), sorted.end());
  auto percentile = [&sorted](double p) {
    if (sorted.empty()) {
      return 0.0;
    }
    size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };
  std::string window = args.pipeline == 0 ? std::string("unbounded")
                                          : "window " + std::to_string(args.pipeline);
  std::printf("load: %zu requests over %zu connection%s (%s) in %.3fs (%.0f req/s)\n",
              report.received, args.connections, args.connections == 1 ? "" : "s",
              window.c_str(), report.wall_seconds,
              report.wall_seconds > 0 ? static_cast<double>(report.received) / report.wall_seconds
                                      : 0.0);
  std::printf("latency: p50 %.3f ms, p99 %.3f ms, max %.3f ms\n", percentile(0.50) * 1e3,
              percentile(0.99) * 1e3, sorted.empty() ? 0.0 : sorted.back() * 1e3);
  return 0;
}

int CmdServe(const Args& args) {
  if (!args.listen.empty()) {
    return CmdServeWire(args);
  }
  const bool want_monolith = !args.trace_path.empty() || !args.advice_path.empty();
  if (want_monolith && (args.trace_path.empty() || args.advice_path.empty())) {
    return Usage();
  }
  if (!want_monolith && args.out_segments_dir.empty()) {
    return Usage();
  }
  if (!args.out_segments_dir.empty() && !args.epoch_size_set) {
    std::fprintf(stderr, "--out-segments needs --epoch-size\n");
    return 2;
  }
  std::vector<Value> inputs;
  if (!args.inputs_path.empty()) {
    // One JSON request per line.
    std::ifstream in(args.inputs_path);
    if (!in) {
      std::fprintf(stderr, "failed to read %s\n", args.inputs_path.c_str());
      return 1;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) {
        continue;
      }
      JsonParseError error;
      auto value = ParseJson(line, &error);
      if (!value) {
        std::fprintf(stderr, "%s:%zu: JSON error at offset %zu: %s\n",
                     args.inputs_path.c_str(), lineno, error.position, error.message.c_str());
        return 1;
      }
      inputs.push_back(std::move(*value));
    }
  } else {
    inputs = GenerateWorkload(MakeWorkloadConfig(args));
  }

  AppSpec app = MakeApp(args.app);
  ServerRunResult run = RunServe(args, app, inputs);

  std::printf("served %zu requests (%s, concurrency %d) in %.3fs\n", inputs.size(),
              CollectModeName(MakeServerConfig(args).mode), args.concurrency,
              run.serve_seconds);
  if (want_monolith) {
    ByteWriter trace_bytes;
    run.trace.Serialize(&trace_bytes);
    ByteWriter advice_bytes;
    run.advice.Serialize(&advice_bytes);
    if (!WriteFile(args.trace_path, trace_bytes.bytes()) ||
        !WriteFile(args.advice_path, advice_bytes.bytes())) {
      std::fprintf(stderr, "failed to write outputs\n");
      return 1;
    }
    std::printf("trace: %zu events -> %s (%zu B)\n", run.trace.events.size(),
                args.trace_path.c_str(), trace_bytes.size());
    std::printf("advice: %zu var-log entries, %zu txns -> %s (%zu B)\n",
                run.advice.var_log_entry_count(), run.advice.tx_logs.size(),
                args.advice_path.c_str(), advice_bytes.size());
  }
  if (!args.out_segments_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.out_segments_dir, ec);
    const KsegCompression comp = ParseCompression(args.compress);
    EpochSlices slices = SliceRun(run.trace, run.advice, args.epoch_size);
    std::string trace_out = args.out_segments_dir + "/trace.kseg";
    std::string advice_out = args.out_segments_dir + "/advice.kseg";
    std::vector<uint8_t> trace_seg = EncodeTraceSegments(slices, comp);
    std::vector<uint8_t> advice_seg = EncodeAdviceSegments(slices, comp);
    if (!WriteFile(trace_out, trace_seg) || !WriteFile(advice_out, advice_seg)) {
      std::fprintf(stderr, "failed to write segment containers in %s\n",
                   args.out_segments_dir.c_str());
      return 1;
    }
    std::printf("segments: %zu epochs (epoch size %llu) -> %s (%zu B), %s (%zu B)\n",
                slices.segments.size(), static_cast<unsigned long long>(args.epoch_size),
                trace_out.c_str(), trace_seg.size(), advice_out.c_str(), advice_seg.size());
    if (comp.any()) {
      const size_t raw_advice = EncodeAdviceSegments(slices).size();
      const size_t raw_trace = EncodeTraceSegments(slices).size();
      std::printf("compressed (%s): advice %zu -> %zu B (%.2fx), trace %zu -> %zu B (%.2fx)\n",
                  args.compress.c_str(), raw_advice, advice_seg.size(),
                  advice_seg.empty() ? 0.0 : static_cast<double>(raw_advice) / advice_seg.size(),
                  raw_trace, trace_seg.size(),
                  trace_seg.empty() ? 0.0 : static_cast<double>(raw_trace) / trace_seg.size());
    }
  }
  return 0;
}

int CmdAudit(const Args& args) {
  std::string trace_path = args.trace_path;
  std::string advice_path = args.advice_path;
  if (!args.segments_dir.empty()) {
    trace_path = args.segments_dir + "/trace.kseg";
    advice_path = args.segments_dir + "/advice.kseg";
  }
  if (trace_path.empty() || advice_path.empty()) {
    return Usage();
  }
  auto trace_bytes = ReadFile(trace_path);
  auto advice_bytes = ReadFile(advice_path);
  if (!trace_bytes || !advice_bytes) {
    std::fprintf(stderr, "failed to read inputs\n");
    return 1;
  }
  if (LooksLikeSegmentFile(*trace_bytes) || LooksLikeSegmentFile(*advice_bytes)) {
    // Segment containers: the container front end file-checks and decodes the
    // streams, then the session audits epoch by epoch.
    if (!args.epoch_size_set) {
      std::fprintf(stderr, "--epoch-size is required for segment containers\n");
      return 2;
    }
    AppSpec app = MakeApp(args.app);
    VerifierConfig config{ParseIsolation(args.isolation), args.threads};
    config.prescreen = !args.no_prescreen;
    StreamAuditResult streamed =
        AuditSegments(app, *trace_bytes, *advice_bytes, config, args.epoch_size);
    std::printf("streamed %llu epochs (epoch size %llu), peak resident advice %zu B\n",
                static_cast<unsigned long long>(streamed.epochs),
                static_cast<unsigned long long>(args.epoch_size),
                streamed.peak_resident_advice_bytes);
    if (args.profile) {
      std::printf("%s\n", AuditProfileToJson(streamed.audit.profile).c_str());
    }
    if (streamed.audit.accepted) {
      std::printf("ACCEPTED: %zu requests in %zu groups, %zu handler executions, "
                  "G = %zu nodes / %zu edges\n",
                  streamed.audit.stats.group_lane_total, streamed.audit.stats.groups,
                  streamed.audit.stats.handler_executions, streamed.audit.stats.graph_nodes,
                  streamed.audit.stats.graph_edges);
      return 0;
    }
    std::printf("REJECTED: %s\n", streamed.audit.reason.c_str());
    return 1;
  }
  ByteReader trace_reader(*trace_bytes);
  auto trace = Trace::Deserialize(&trace_reader);
  if (!trace) {
    std::printf("REJECTED: malformed trace file\n");
    return 1;
  }
  ByteReader advice_reader(*advice_bytes);
  auto advice = Advice::Deserialize(&advice_reader);
  if (!advice) {
    std::printf("REJECTED: malformed advice (server misbehavior)\n");
    return 1;
  }
  AppSpec app = MakeApp(args.app);
  VerifierConfig config{ParseIsolation(args.isolation), args.threads};
  config.prescreen = !args.no_prescreen;

  AuditResult audit;
  if (args.epoch_size_set || !args.resume_path.empty() || !args.checkpoint_path.empty()) {
    // Epoch-streamed path: slice the inputs, feed one epoch at a time, and
    // (optionally) persist the carry state after every epoch.
    std::unique_ptr<AuditSession> session;
    if (!args.resume_path.empty()) {
      auto checkpoint = ReadFile(args.resume_path);
      if (!checkpoint) {
        std::fprintf(stderr, "failed to read %s\n", args.resume_path.c_str());
        return 1;
      }
      std::string error;
      session = AuditSession::Restore(*app.program, config, *checkpoint, &error);
      if (session == nullptr) {
        std::printf("REJECTED: %s\n", error.c_str());
        return 1;
      }
      std::printf("resumed from %s at epoch %llu\n", args.resume_path.c_str(),
                  static_cast<unsigned long long>(session->next_epoch()));
    } else {
      session = std::make_unique<AuditSession>(*app.program, config, args.epoch_size);
    }
    // Resume must re-slice at the checkpoint's epoch size, or epoch indices
    // would not line up with the audited prefix.
    EpochSlices slices = SliceRun(*trace, *advice, session->epoch_requests());
    bool checkpoint_failed = false;
    FeedRemaining(session.get(), slices, [&](AuditSession& s) {
      if (!args.checkpoint_path.empty() &&
          !WriteFile(args.checkpoint_path, s.SaveCheckpoint())) {
        checkpoint_failed = true;
      }
    });
    if (checkpoint_failed) {
      std::fprintf(stderr, "failed to write %s\n", args.checkpoint_path.c_str());
      return 1;
    }
    audit = session->Finish();
    std::printf("streamed %zu epochs (epoch size %llu), peak resident advice %zu B\n",
                slices.segments.size(),
                static_cast<unsigned long long>(session->epoch_requests()),
                session->peak_resident_advice_bytes());
  } else {
    audit = AuditOnly(app, *trace, *advice, config);
  }
  if (args.profile) {
    std::printf("%s\n", AuditProfileToJson(audit.profile).c_str());
  }
  if (audit.accepted) {
    std::printf("ACCEPTED: %zu requests in %zu groups, %zu handler executions, "
                "G = %zu nodes / %zu edges\n",
                audit.stats.group_lane_total, audit.stats.groups,
                audit.stats.handler_executions, audit.stats.graph_nodes,
                audit.stats.graph_edges);
    return 0;
  }
  std::printf("REJECTED: %s\n", audit.reason.c_str());
  return 1;
}

// karousos shard: partition a monolithic (trace, advice) run into K
// self-contained shard files, each independently auditable.
int CmdShard(const Args& args) {
  if (args.trace_path.empty() || args.advice_path.empty() || args.out_dir.empty() ||
      args.shards == 0) {
    return Usage();
  }
  auto mode = ParseShardMode(args.shard_mode);
  if (!mode) {
    std::fprintf(stderr, "unknown --shard-mode '%s' (want hash or range)\n",
                 args.shard_mode.c_str());
    return 2;
  }
  auto trace_bytes = ReadFile(args.trace_path);
  auto advice_bytes = ReadFile(args.advice_path);
  if (!trace_bytes || !advice_bytes) {
    std::fprintf(stderr, "failed to read inputs\n");
    return 1;
  }
  ByteReader trace_reader(*trace_bytes);
  auto trace = Trace::Deserialize(&trace_reader);
  if (!trace) {
    std::fprintf(stderr, "malformed trace file\n");
    return 1;
  }
  ByteReader advice_reader(*advice_bytes);
  auto advice = Advice::Deserialize(&advice_reader);
  if (!advice) {
    std::fprintf(stderr, "malformed advice file\n");
    return 1;
  }
  const KsegCompression comp = ParseCompression(args.compress);
  ShardSpec spec{args.shards, *mode};
  std::vector<ShardFile> shards = ShardRun(*trace, *advice, args.epoch_size, spec);
  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  for (const ShardFile& shard : shards) {
    std::vector<uint8_t> bytes =
        comp.any() ? EncodeShardFile(shard, comp) : EncodeShardFile(shard);
    const std::string path =
        args.out_dir + "/shard" + std::to_string(shard.boundary.shard) + ".kseg";
    if (!WriteFile(path, bytes)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("shard %u/%u -> %s (%zu B): %zu rids, %llu epochs, "
                "%zu write-order entries of %llu, %zu chains, %zu+%zu export obligations\n",
                shard.boundary.shard, shard.boundary.count, path.c_str(), bytes.size(),
                shard.boundary.rids.size(),
                static_cast<unsigned long long>(shard.boundary.epochs),
                shard.boundary.write_order_positions.size(),
                static_cast<unsigned long long>(shard.boundary.write_order_total),
                shard.boundary.chains.size(), shard.boundary.export_tx_refs.size(),
                shard.boundary.export_var_refs.size());
  }
  std::printf("sharded into %zu files (%s mode, epoch size %llu) in %s\n", shards.size(),
              ShardModeName(*mode), static_cast<unsigned long long>(args.epoch_size),
              args.out_dir.c_str());
  return 0;
}

// karousos audit-shard: verify one shard file in isolation and emit its
// signed-verdict artifact for audit-merge.
int CmdAuditShard(const Args& args) {
  if (args.shard_file.empty()) {
    return Usage();
  }
  ShardLoadResult loaded = LoadShardFile(args.shard_file);
  if (!loaded.ok) {
    // No artifact: an unloadable shard never produces a mergeable verdict.
    std::printf("REJECTED: %s\n", loaded.reason.c_str());
    return 1;
  }
  AppSpec app = MakeApp(args.app);
  VerifierConfig config{ParseIsolation(args.isolation), args.threads};
  config.prescreen = !args.no_prescreen;
  ShardArtifact artifact = RunShardAudit(*app.program, loaded.file, config);
  if (!args.out_path.empty()) {
    if (!WriteFile(args.out_path, EncodeShardArtifact(artifact))) {
      std::fprintf(stderr, "failed to write %s\n", args.out_path.c_str());
      return 1;
    }
  }
  std::printf("shard %u/%u: %llu epochs, %zu rids, peak resident advice %llu B\n",
              artifact.shard, artifact.count,
              static_cast<unsigned long long>(artifact.epochs), artifact.rids.size(),
              static_cast<unsigned long long>(artifact.peak_resident));
  if (artifact.accepted) {
    std::printf("SHARD ACCEPTED: %zu write-order entries, %zu txns, "
                "%zu pending imports, %zu exports\n",
                artifact.write_order.size(), artifact.txn_sizes.size(),
                artifact.pending_tx_imports.size() + artifact.pending_var_imports.size(),
                artifact.tx_exports.size() + artifact.var_exports.size());
    return 0;
  }
  std::printf("SHARD REJECTED: %s\n", artifact.reason.c_str());
  return 1;
}

// karousos audit-merge: combine K shard-verdict artifacts into the run's
// verdict — exactly the cross-shard checks, no re-execution.
int CmdAuditMerge(const Args& args) {
  std::vector<std::string> paths = args.artifact_paths;
  if (!args.in_dir.empty()) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(args.in_dir, ec)) {
      if (entry.path().extension() == ".artifact") {
        paths.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "failed to scan %s: %s\n", args.in_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
    std::sort(paths.begin(), paths.end());
  }
  if (paths.empty()) {
    return Usage();
  }
  std::vector<ShardArtifact> artifacts;
  artifacts.reserve(paths.size());
  for (const std::string& path : paths) {
    ShardArtifactLoadResult loaded = LoadShardArtifactFile(path);
    if (!loaded.ok) {
      std::printf("REJECTED: %s: %s\n", path.c_str(), loaded.reason.c_str());
      return 1;
    }
    artifacts.push_back(std::move(loaded.artifact));
  }
  AuditResult merged = MergeShardArtifacts(artifacts);
  for (const LintDiagnostic& d : merged.diagnostics) {
    std::printf("%s\n", d.Format().c_str());
  }
  if (merged.accepted) {
    std::printf("ACCEPTED: %zu shards merged, isolation DG %zu nodes / %zu edges\n",
                artifacts.size(), merged.stats.isolation_dg_nodes,
                merged.stats.isolation_dg_edges);
    return 0;
  }
  std::printf("REJECTED: %s\n", merged.reason.c_str());
  return 1;
}

int CmdTamper(const Args& args) {
  if (args.trace_path.empty() || args.out_path.empty()) {
    return Usage();
  }
  auto bytes = ReadFile(args.trace_path);
  if (!bytes) {
    std::fprintf(stderr, "failed to read trace\n");
    return 1;
  }
  ByteReader reader(*bytes);
  auto trace = Trace::Deserialize(&reader);
  if (!trace) {
    std::fprintf(stderr, "malformed trace\n");
    return 1;
  }
  for (TraceEvent& ev : trace->events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"forged", true}});
      std::printf("forged the response of request %llu\n",
                  static_cast<unsigned long long>(ev.rid));
      break;
    }
  }
  ByteWriter writer;
  trace->Serialize(&writer);
  if (!WriteFile(args.out_path, writer.bytes())) {
    std::fprintf(stderr, "failed to write output\n");
    return 1;
  }
  return 0;
}

// Renders a frame's flags byte as stage letters: L(anes) D(ict) B(lock).
std::string FlagsString(uint8_t flags) {
  if (flags == 0) {
    return "---";
  }
  std::string s;
  s.push_back((flags & kFrameFlagLanes) ? 'L' : '-');
  s.push_back((flags & kFrameFlagDict) ? 'D' : '-');
  s.push_back((flags & kFrameFlagBlock) ? 'B' : '-');
  return s;
}

// Walks a segment container and prints one line per frame: offset, kind,
// epoch, codec flags, stored payload size, CRC, and (for decodable kinds)
// the payload's counts. For advice containers it accumulates the decoded
// per-component SizeBreakdown and reports stored vs raw-equivalent bytes —
// the per-file compression ratio.
int InspectSegments(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  if (reader == nullptr) {
    std::printf("malformed segment container: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s: segment container, format v%u, %zu B\n", path.c_str(),
              reader->format_version(), bytes.size());
  SegmentRecord record;
  size_t frames = 0;
  size_t stored_advice = 0;
  size_t raw_advice = 0;
  size_t stored_trace = 0;
  size_t raw_trace = 0;
  size_t imports_bytes = 0;
  Advice::SizeBreakdown breakdown;
  while (reader->Next(&record)) {
    ++frames;
    std::printf("  @%-8llu %-10s epoch %-4llu flags %s  payload %8zu B  crc 0x%08x",
                static_cast<unsigned long long>(record.offset),
                SegmentKindName(record.kind),
                static_cast<unsigned long long>(record.epoch), FlagsString(record.flags).c_str(),
                record.payload.size(), record.crc);
    if (record.kind == SegmentKind::kTrace) {
      auto window = DecodeTraceSegmentPayload(record.payload, record.flags);
      if (window) {
        ByteWriter raw;
        SerializeTraceEvents(*window, &raw);
        stored_trace += record.payload.size();
        raw_trace += raw.size();
        std::printf("  (%zu events)", window->size());
      } else {
        std::printf("  (undecodable payload)");
      }
    } else if (record.kind == SegmentKind::kAdvice) {
      auto payload = DecodeAdviceSegmentPayload(record.payload, record.flags);
      if (payload) {
        Advice::SizeBreakdown b = payload->advice.MeasureSize();
        breakdown.total += b.total;
        breakdown.tags += b.tags;
        breakdown.handler_logs += b.handler_logs;
        breakdown.var_logs += b.var_logs;
        breakdown.tx_logs += b.tx_logs;
        breakdown.write_order += b.write_order;
        breakdown.other += b.other;
        ByteWriter imports_raw;
        payload->imports.Serialize(&imports_raw);
        imports_bytes += imports_raw.size();
        stored_advice += record.payload.size();
        raw_advice += b.total + imports_raw.size();
        std::printf("  (%zu requests, %zu var-log entries, %zu txns, %zu imports)",
                    payload->advice.tags.size(), payload->advice.var_log_entry_count(),
                    payload->advice.tx_logs.size(),
                    payload->imports.tx_ops.size() + payload->imports.var_entries.size());
      } else {
        std::printf("  (undecodable payload)");
      }
    } else if (record.kind == SegmentKind::kShardBoundary) {
      ByteReader in(record.payload);
      auto boundary = ShardBoundary::Deserialize(&in);
      if (boundary && in.AtEnd()) {
        std::printf("  (shard %u/%u, %s mode, %llu epochs of %llu requests, %zu rids, "
                    "%zu/%llu write-order entries, %zu chains, %zu+%zu export obligations)",
                    boundary->shard, boundary->count, ShardModeName(boundary->mode),
                    static_cast<unsigned long long>(boundary->epochs),
                    static_cast<unsigned long long>(boundary->epoch_requests),
                    boundary->rids.size(), boundary->write_order_positions.size(),
                    static_cast<unsigned long long>(boundary->write_order_total),
                    boundary->chains.size(), boundary->export_tx_refs.size(),
                    boundary->export_var_refs.size());
      } else {
        std::printf("  (undecodable payload)");
      }
    } else if (record.kind == SegmentKind::kShardArtifact) {
      ByteReader in(record.payload);
      auto artifact = ShardArtifact::Deserialize(&in);
      if (artifact && in.AtEnd()) {
        std::printf("  (shard %u/%u, %s", artifact->shard, artifact->count,
                    artifact->accepted ? "ACCEPTED" : "REJECTED");
        if (!artifact->accepted) {
          std::printf(" [%s]", artifact->rule.empty() ? "dynamic" : artifact->rule.c_str());
        }
        std::printf(", %zu rids, %zu write-order entries, %zu pending imports, %zu exports)",
                    artifact->rids.size(), artifact->write_order.size(),
                    artifact->pending_tx_imports.size() + artifact->pending_var_imports.size(),
                    artifact->tx_exports.size() + artifact->var_exports.size());
      } else {
        std::printf("  (undecodable payload)");
      }
    }
    std::printf("\n");
  }
  if (!reader->ok()) {
    std::printf("  malformed after %zu frame(s): %s\n", frames, reader->error().c_str());
    return 1;
  }
  std::printf("%zu frame(s)\n", frames);
  if (raw_advice > 0) {
    std::printf("advice payloads: %zu B stored, %zu B raw-equivalent (%.2fx)\n", stored_advice,
                raw_advice,
                stored_advice ? static_cast<double>(raw_advice) / stored_advice : 0.0);
    std::printf("  raw-equivalent composition:\n");
    std::printf("    tags:           %8zu B\n", breakdown.tags);
    std::printf("    handler logs:   %8zu B\n", breakdown.handler_logs);
    std::printf("    variable logs:  %8zu B\n", breakdown.var_logs);
    std::printf("    tx logs:        %8zu B\n", breakdown.tx_logs);
    std::printf("    write order:    %8zu B\n", breakdown.write_order);
    std::printf("    other:          %8zu B\n", breakdown.other);
    std::printf("    imports:        %8zu B\n", imports_bytes);
  }
  if (raw_trace > 0) {
    std::printf("trace payloads: %zu B stored, %zu B raw-equivalent (%.2fx)\n", stored_trace,
                raw_trace, stored_trace ? static_cast<double>(raw_trace) / stored_trace : 0.0);
  }
  return 0;
}

int CmdInspect(const Args& args) {
  const bool have_advice = !args.advice_path.empty();
  const bool have_trace = !args.trace_path.empty();
  if (have_advice == have_trace) {
    return Usage();
  }
  const std::string& path = have_advice ? args.advice_path : args.trace_path;
  auto bytes = ReadFile(path);
  if (!bytes) {
    std::fprintf(stderr, "failed to read %s\n", path.c_str());
    return 1;
  }
  if (LooksLikeSegmentFile(*bytes)) {
    return InspectSegments(path, *bytes);
  }
  if (have_trace) {
    ByteReader trace_reader(*bytes);
    auto trace = Trace::Deserialize(&trace_reader);
    if (!trace) {
      std::printf("malformed trace file\n");
      return 1;
    }
    size_t requests = 0;
    size_t responses = 0;
    for (const TraceEvent& ev : trace->events) {
      if (ev.kind == TraceEvent::Kind::kRequest) {
        ++requests;
      } else {
        ++responses;
      }
    }
    std::printf("trace: %zu events (%zu requests, %zu responses), %zu B\n",
                trace->events.size(), requests, responses, bytes->size());
    return 0;
  }
  ByteReader reader(*bytes);
  auto advice = Advice::Deserialize(&reader);
  if (!advice) {
    std::printf("malformed advice file\n");
    return 1;
  }
  Advice::SizeBreakdown size = advice->MeasureSize();
  std::printf("advice: %zu B total\n", size.total);
  std::printf("  tags:           %8zu B (%zu requests)\n", size.tags, advice->tags.size());
  std::printf("  handler logs:   %8zu B (%zu entries)\n", size.handler_logs,
              advice->handler_log_entry_count());
  std::printf("  variable logs:  %8zu B (%zu entries in %zu variables)\n", size.var_logs,
              advice->var_log_entry_count(), advice->var_logs.size());
  std::printf("  tx logs:        %8zu B (%zu transactions)\n", size.tx_logs,
              advice->tx_logs.size());
  std::printf("  write order:    %8zu B (%zu writes)\n", size.write_order,
              advice->write_order.size());
  std::printf("  other:          %8zu B (%zu opcounts, %zu nondet records)\n", size.other,
              advice->opcounts.size(), advice->nondet.size());
  return 0;
}

// The streaming static model check: file-layer walk + per-epoch KAR-ADV lint
// + cross-epoch KAR-SEG rules, no re-execution. Shared by `check` and by
// `analyze` when it is handed segment containers.
int RunSegmentCheck(const std::vector<uint8_t>& trace_bytes,
                    const std::vector<uint8_t>& advice_bytes, uint64_t epoch_requests) {
  CheckResult result = CheckSegmentStreams(trace_bytes, advice_bytes, epoch_requests);
  for (const LintDiagnostic& d : result.diagnostics) {
    std::printf("%s\n", d.Format().c_str());
  }
  if (result.ok) {
    std::printf("model check: clean (%llu epochs, %llu frames)\n",
                static_cast<unsigned long long>(result.epochs),
                static_cast<unsigned long long>(result.frames));
    return 0;
  }
  std::printf("REJECTED: %s\n", result.reason.c_str());
  return 1;
}

// `karousos check`: the static half of the audit, standalone. Accepts the
// segmented production artifact (--segments DIR or KSEG --trace/--advice) or
// a monolithic pair, which it slices at --epoch-size first.
int CmdCheck(const Args& args) {
  std::string trace_path = args.trace_path;
  std::string advice_path = args.advice_path;
  if (!args.segments_dir.empty()) {
    trace_path = args.segments_dir + "/trace.kseg";
    advice_path = args.segments_dir + "/advice.kseg";
  }
  if (trace_path.empty() || advice_path.empty()) {
    return Usage();
  }
  auto trace_bytes = ReadFile(trace_path);
  auto advice_bytes = ReadFile(advice_path);
  if (!trace_bytes || !advice_bytes) {
    std::fprintf(stderr, "failed to read inputs\n");
    return 1;
  }
  if (LooksLikeSegmentFile(*trace_bytes) || LooksLikeSegmentFile(*advice_bytes)) {
    if (!args.epoch_size_set) {
      std::fprintf(stderr, "--epoch-size is required for segment containers\n");
      return 2;
    }
    return RunSegmentCheck(*trace_bytes, *advice_bytes, args.epoch_size);
  }
  ByteReader trace_reader(*trace_bytes);
  auto trace = Trace::Deserialize(&trace_reader);
  if (!trace) {
    std::printf("malformed trace file\n");
    return 1;
  }
  ByteReader advice_reader(*advice_bytes);
  auto advice = Advice::Deserialize(&advice_reader);
  if (!advice) {
    std::printf("malformed advice file\n");
    return 1;
  }
  CheckResult result = CheckRun(*trace, *advice, args.epoch_size);
  for (const LintDiagnostic& d : result.diagnostics) {
    std::printf("%s\n", d.Format().c_str());
  }
  if (result.ok) {
    std::printf("model check: clean (%llu epochs)\n",
                static_cast<unsigned long long>(result.epochs));
    return 0;
  }
  std::printf("REJECTED: %s\n", result.reason.c_str());
  return 1;
}

// Runs the structural advice linter over (trace, advice) files — the same
// pass Verifier::Audit runs as its preprocess stage, standalone and without
// re-execution. Prints every diagnostic; exits 1 iff there are findings.
// Segment containers divert to the streaming model check.
int CmdAnalyzeLint(const Args& args) {
  if (args.trace_path.empty() || args.advice_path.empty()) {
    return Usage();
  }
  auto trace_bytes = ReadFile(args.trace_path);
  auto advice_bytes = ReadFile(args.advice_path);
  if (!trace_bytes || !advice_bytes) {
    std::fprintf(stderr, "failed to read inputs\n");
    return 1;
  }
  if (LooksLikeSegmentFile(*trace_bytes) || LooksLikeSegmentFile(*advice_bytes)) {
    if (!args.epoch_size_set) {
      std::fprintf(stderr, "--epoch-size is required for segment containers\n");
      return 2;
    }
    return RunSegmentCheck(*trace_bytes, *advice_bytes, args.epoch_size);
  }
  ByteReader trace_reader(*trace_bytes);
  auto trace = Trace::Deserialize(&trace_reader);
  if (!trace) {
    std::printf("malformed trace file\n");
    return 1;
  }
  ByteReader advice_reader(*advice_bytes);
  auto advice = Advice::Deserialize(&advice_reader);
  if (!advice) {
    std::printf("malformed advice file\n");
    return 1;
  }
  std::vector<LintDiagnostic> diagnostics = LintAdvice(*trace, *advice);
  for (const LintDiagnostic& d : diagnostics) {
    std::printf("%s\n", d.Format().c_str());
  }
  if (diagnostics.empty()) {
    std::printf("advice lint: clean (%zu requests, %zu var-log entries)\n",
                advice->tags.size(), advice->var_log_entry_count());
    return 0;
  }
  std::printf("advice lint: %zu finding(s)\n", diagnostics.size());
  return 1;
}

// Serves the app in-process with untracked-access recording on and runs the
// §5 happens-before race detector over the access log. Exits 1 iff races.
int CmdAnalyzeRaces(const Args& args) {
  std::vector<Value> inputs = GenerateWorkload(MakeWorkloadConfig(args));
  AppSpec app = MakeApp(args.app);
  ServerRunResult run = RunServe(args, app, inputs);

  std::vector<RaceFinding> findings = DetectUntrackedRaces(run.untracked_accesses);
  for (const RaceFinding& f : findings) {
    std::printf("%s: %s\n", f.rule.c_str(), f.Describe().c_str());
  }
  if (findings.empty()) {
    std::printf("race check: clean (%zu untracked accesses across %zu requests)\n",
                run.untracked_accesses.size(), inputs.size());
    return 0;
  }
  std::printf("race check: %zu finding(s)\n", findings.size());
  return 1;
}

int CmdAnalyze(const Args& args) {
  return args.races ? CmdAnalyzeRaces(args) : CmdAnalyzeLint(args);
}

int Main(int argc, char** argv) {
  auto args = Parse(argc, argv);
  if (!args) {
    return Usage();
  }
  if (args->command == "serve") {
    return CmdServe(*args);
  }
  if (args->command == "load") {
    return CmdLoad(*args);
  }
  if (args->command == "audit") {
    return CmdAudit(*args);
  }
  if (args->command == "shard") {
    return CmdShard(*args);
  }
  if (args->command == "audit-shard") {
    return CmdAuditShard(*args);
  }
  if (args->command == "audit-merge") {
    return CmdAuditMerge(*args);
  }
  if (args->command == "tamper") {
    return CmdTamper(*args);
  }
  if (args->command == "inspect") {
    return CmdInspect(*args);
  }
  if (args->command == "analyze") {
    return CmdAnalyze(*args);
  }
  if (args->command == "check") {
    return CmdCheck(*args);
  }
  return Usage();
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
