// Shard-axis equivalence: for the same complete (trace, advice) pair, the
// sharded pipeline — ShardRun → per-shard RunShardAudit → MergeShardArtifacts
// — must reach the one-shot verifier's verdict, reason, rule, and diagnostics
// at every shard count, epoch size, and thread count, with both the shard
// files and the verdict artifacts round-tripped through their containers.
// Adversarial coverage splits by where the fault is visible: content
// mutations (mutate the monolithic run, then shard it) must reject under the
// unsharded rule; merge-only adversaries (tamper the artifacts after every
// shard passed individually) must be caught by the merge's global checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/carry_lint.h"
#include "src/audit/audit.h"
#include "src/kem/varid.h"
#include "src/server/shard.h"
#include "src/verifier/shard_audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct HonestRun {
  AppSpec app;
  ServerRunResult server;
};

HonestRun RunApp(const std::string& name, size_t requests, int concurrency = 8) {
  HonestRun run{name == "motd"     ? MakeMotdApp()
                : name == "stacks" ? MakeStacksApp()
                                   : MakeWikiApp(),
                {}};
  WorkloadConfig wl;
  wl.app = name;
  wl.kind = name == "wiki" ? WorkloadKind::kWikiMix : WorkloadKind::kMixed;
  wl.requests = requests;
  ServerConfig config;
  config.concurrency = concurrency;
  Server server(*run.app.program, config);
  run.server = server.Run(GenerateWorkload(wl));
  return run;
}

void ExpectSameOutcome(const AuditResult& expected, const AuditResult& actual,
                       const std::string& context) {
  EXPECT_EQ(expected.accepted, actual.accepted) << context << ": " << actual.reason;
  EXPECT_EQ(expected.reason, actual.reason) << context;
  EXPECT_EQ(expected.rule, actual.rule) << context;
  ASSERT_EQ(expected.diagnostics.size(), actual.diagnostics.size()) << context;
  for (size_t i = 0; i < expected.diagnostics.size(); ++i) {
    EXPECT_EQ(expected.diagnostics[i].Format(), actual.diagnostics[i].Format())
        << context << " diagnostic " << i;
  }
}

// The full production pipeline, serde included: shard the run, encode each
// shard file and reload it, audit each shard in isolation, round-trip every
// verdict artifact through its container, merge.
AuditResult ShardedVerdict(const HonestRun& run, uint32_t k, uint64_t epoch_size,
                           unsigned threads, ShardMode mode = ShardMode::kHash) {
  ShardSpec spec{k, mode};
  std::vector<ShardFile> shards =
      ShardRun(run.server.trace, run.server.advice, epoch_size, spec);
  EXPECT_EQ(shards.size(), k);
  std::vector<ShardArtifact> artifacts;
  for (const ShardFile& shard : shards) {
    ShardLoadResult loaded = LoadShardBytes(EncodeShardFile(shard));
    EXPECT_TRUE(loaded.ok) << loaded.reason;
    if (!loaded.ok) {
      AuditResult r;
      r.accepted = false;
      r.reason = loaded.reason;
      r.rule = loaded.rule;
      r.diagnostics = loaded.diagnostics;
      return r;
    }
    ShardArtifact artifact = RunShardAudit(
        *run.app.program, loaded.file, VerifierConfig{IsolationLevel::kSerializable, threads});
    ShardArtifactLoadResult round_trip =
        LoadShardArtifactBytes(EncodeShardArtifact(artifact));
    EXPECT_TRUE(round_trip.ok) << round_trip.reason;
    artifacts.push_back(round_trip.ok ? round_trip.artifact : artifact);
  }
  return MergeShardArtifacts(artifacts);
}

// Per-shard audits over in-memory shard files, asserted individually
// accepted — the starting point for every merge-only adversary.
std::vector<ShardArtifact> HonestArtifacts(const HonestRun& run, uint32_t k,
                                           uint64_t epoch_size) {
  std::vector<ShardFile> shards =
      ShardRun(run.server.trace, run.server.advice, epoch_size, ShardSpec{k, ShardMode::kHash});
  std::vector<ShardArtifact> artifacts;
  for (const ShardFile& shard : shards) {
    ShardArtifact artifact = RunShardAudit(*run.app.program, shard,
                                           VerifierConfig{IsolationLevel::kSerializable, 1});
    EXPECT_TRUE(artifact.accepted) << artifact.reason;
    artifacts.push_back(std::move(artifact));
  }
  return artifacts;
}

// The equivalence sweep: one-shot oracle vs shard counts {1, 2, 4, 8} at
// epoch sizes {1, 50, 0=∞} and threads {1, 4}.
void ExpectShardMatchesOneShot(const HonestRun& run) {
  AuditResult oneshot = AuditOnly(run.app, run.server.trace, run.server.advice,
                                  VerifierConfig{IsolationLevel::kSerializable, 1});
  for (uint32_t k : {1u, 2u, 4u, 8u}) {
    for (uint64_t epoch_size : {uint64_t{1}, uint64_t{50}, uint64_t{0}}) {
      for (unsigned threads : {1u, 4u}) {
        AuditResult merged = ShardedVerdict(run, k, epoch_size, threads);
        ExpectSameOutcome(oneshot, merged,
                          "K=" + std::to_string(k) +
                              " epoch_size=" + std::to_string(epoch_size) +
                              " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(ShardEquivalenceTest, HonestMotd) { ExpectShardMatchesOneShot(RunApp("motd", 60)); }

TEST(ShardEquivalenceTest, HonestStacks) { ExpectShardMatchesOneShot(RunApp("stacks", 60)); }

TEST(ShardEquivalenceTest, HonestWiki) { ExpectShardMatchesOneShot(RunApp("wiki", 60)); }

TEST(ShardEquivalenceTest, HonestRangeMode) {
  HonestRun run = RunApp("stacks", 60);
  AuditResult oneshot = AuditOnly(run.app, run.server.trace, run.server.advice,
                                  VerifierConfig{IsolationLevel::kSerializable, 1});
  ExpectSameOutcome(oneshot, ShardedVerdict(run, 4, 50, 1, ShardMode::kRange), "range K=4");
}

TEST(ShardEquivalenceTest, MergeIsArtifactOrderIndependent) {
  HonestRun run = RunApp("wiki", 60);
  std::vector<ShardArtifact> artifacts = HonestArtifacts(run, 4, 50);
  AuditResult in_order = MergeShardArtifacts(artifacts);
  std::reverse(artifacts.begin(), artifacts.end());
  AuditResult reversed = MergeShardArtifacts(artifacts);
  ExpectSameOutcome(in_order, reversed, "reversed artifact order");
}

TEST(ShardEquivalenceTest, ShardAuditIsDeterministic) {
  // The resume story: re-running one crashed shard's audit must reproduce
  // its artifact byte-for-byte, so a restarted worker slots into the same
  // merge.
  HonestRun run = RunApp("stacks", 60);
  std::vector<ShardFile> shards =
      ShardRun(run.server.trace, run.server.advice, 50, ShardSpec{2, ShardMode::kHash});
  ASSERT_EQ(shards.size(), 2u);
  VerifierConfig config{IsolationLevel::kSerializable, 1};
  std::vector<uint8_t> first =
      EncodeShardArtifact(RunShardAudit(*run.app.program, shards[1], config));
  std::vector<uint8_t> second =
      EncodeShardArtifact(RunShardAudit(*run.app.program, shards[1], config));
  EXPECT_EQ(first, second);
}

// --- Content adversaries: mutate the monolithic run, shard it, and demand --
// --- the unsharded rejection out of the merge. -----------------------------

void ExpectShardRejectsLikeOracle(const HonestRun& run, bool require_same_reason = true) {
  AuditResult oneshot = AuditOnly(run.app, run.server.trace, run.server.advice,
                                  VerifierConfig{IsolationLevel::kSerializable, 1});
  ASSERT_FALSE(oneshot.accepted);
  for (uint32_t k : {2u, 4u}) {
    AuditResult merged = ShardedVerdict(run, k, 50, 1);
    std::string context = "K=" + std::to_string(k);
    EXPECT_FALSE(merged.accepted) << context;
    EXPECT_EQ(oneshot.rule, merged.rule) << context << ": " << merged.reason;
    if (require_same_reason) {
      EXPECT_EQ(oneshot.reason, merged.reason) << context;
    }
  }
}

TEST(ShardAdversarialTest, ForgedResponse) {
  HonestRun run = RunApp("motd", 40);
  for (TraceEvent& ev : run.server.trace.events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"msg", "forged"}});
      break;
    }
  }
  ExpectShardRejectsLikeOracle(run);
}

TEST(ShardAdversarialTest, TamperedVarLogWriteValue) {
  HonestRun run = RunApp("motd", 40);
  bool mutated = false;
  for (auto& [vid, log] : run.server.advice.var_logs) {
    for (auto& [op, entry] : log) {
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        entry.value = Value("poisoned");
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  ASSERT_TRUE(mutated);
  ExpectShardRejectsLikeOracle(run);
}

TEST(ShardAdversarialTest, GhostVarLogEntry) {
  HonestRun run = RunApp("motd", 40);
  VarId vid = ResolveVarId("motd", VarScope::kGlobal, 0);
  VarLogEntry ghost;
  ghost.kind = VarLogEntry::Kind::kWrite;
  ghost.value = Value("ghost");
  ghost.prec = kNilOp;
  run.server.advice.var_logs[vid].emplace(OpRef{1, 0x1234, 77}, ghost);
  ExpectShardRejectsLikeOracle(run);
}

TEST(ShardAdversarialTest, DroppedHandlerLogEntry) {
  HonestRun run = RunApp("stacks", 60);
  bool mutated = false;
  for (auto& [rid, log] : run.server.advice.handler_logs) {
    if (!log.empty()) {
      log.pop_back();
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  ExpectShardRejectsLikeOracle(run);
}

TEST(ShardAdversarialTest, InflatedOpcount) {
  HonestRun run = RunApp("motd", 40);
  ASSERT_FALSE(run.server.advice.opcounts.empty());
  run.server.advice.opcounts.begin()->second += 1;
  ExpectShardRejectsLikeOracle(run);
}

TEST(ShardAdversarialTest, MissingResponseEmittedBy) {
  HonestRun run = RunApp("motd", 40);
  ASSERT_FALSE(run.server.advice.response_emitted_by.empty());
  run.server.advice.response_emitted_by.erase(run.server.advice.response_emitted_by.begin());
  ExpectShardRejectsLikeOracle(run);
}

TEST(ShardAdversarialTest, SwappedWriteOrder) {
  HonestRun run = RunApp("stacks", 60);
  ASSERT_GE(run.server.advice.write_order.size(), 2u);
  std::swap(run.server.advice.write_order.front(), run.server.advice.write_order.back());
  // A swap perturbs two entries that may land in different shards, so the
  // first-rejecting shard can describe the other end of the swap than the
  // one-shot scan reaches first: rule identity is the contract here.
  ExpectShardRejectsLikeOracle(run, /*require_same_reason=*/false);
}

TEST(ShardAdversarialTest, GetClaimedNotFound) {
  HonestRun run = RunApp("stacks", 60);
  bool mutated = false;
  for (auto& [txn, log] : run.server.advice.tx_logs) {
    for (TxOperation& op : log) {
      if (op.type == TxOpType::kGet && op.get_found) {
        op.get_found = false;
        op.get_from = kNilTxOp;
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  if (!mutated) {
    GTEST_SKIP() << "no found GET in this schedule";
  }
  // This mutation diverts control flow, so which check fires depends on the
  // re-execution group's composition (see epoch_audit_test). Sharding is
  // group-atomic, but the shard's scan order over groups differs from the
  // global one, so only rejection itself is the contract.
  AuditResult oneshot = AuditOnly(run.app, run.server.trace, run.server.advice,
                                  VerifierConfig{IsolationLevel::kSerializable, 1});
  ASSERT_FALSE(oneshot.accepted);
  for (uint32_t k : {2u, 4u}) {
    AuditResult merged = ShardedVerdict(run, k, 50, 1);
    EXPECT_FALSE(merged.accepted) << "K=" << k;
  }
}

TEST(ShardAdversarialTest, UnbalancedTraceMissingResponse) {
  HonestRun run = RunApp("motd", 40);
  for (auto it = run.server.trace.events.rbegin(); it != run.server.trace.events.rend();
       ++it) {
    if (it->kind == TraceEvent::Kind::kResponse) {
      run.server.trace.events.erase(std::next(it).base());
      break;
    }
  }
  ExpectShardRejectsLikeOracle(run);
}

// --- Merge-only adversaries: every shard passes individually; the fault ----
// --- exists only in the cross-shard view the merge reconstructs. -----------

TEST(ShardMergeAdversaryTest, DuplicatedRidAcrossBoundaries) {
  HonestRun run = RunApp("wiki", 60);
  std::vector<ShardArtifact> artifacts = HonestArtifacts(run, 2, 50);
  ASSERT_EQ(artifacts.size(), 2u);
  // Claim one of shard 1's requests for shard 0 too, keeping shard 0's
  // self-digest consistent so only the cross-shard partition check can see it.
  RequestId stolen = 0;
  for (RequestId rid : artifacts[1].rids) {
    if (rid != 0) {
      stolen = rid;
      break;
    }
  }
  ASSERT_NE(stolen, 0u);
  artifacts[0].rids.insert(
      std::lower_bound(artifacts[0].rids.begin(), artifacts[0].rids.end(), stolen), stolen);
  artifacts[0].rid_digest = DigestRids(artifacts[0].rids);
  AuditResult merged = MergeShardArtifacts(artifacts);
  EXPECT_FALSE(merged.accepted);
  EXPECT_EQ(merged.rule, kKarSeg012) << merged.reason;
}

TEST(ShardMergeAdversaryTest, BrokenWriteOrderStitch) {
  HonestRun run = RunApp("stacks", 60);
  std::vector<ShardArtifact> artifacts = HonestArtifacts(run, 2, 50);
  ASSERT_EQ(artifacts.size(), 2u);
  // Duplicate a global position inside one shard's stitch claim: every
  // per-shard check still passes, but the total order no longer tiles.
  ShardArtifact* victim = nullptr;
  for (ShardArtifact& a : artifacts) {
    if (a.write_order_positions.size() >= 2) {
      victim = &a;
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "schedule produced no shard with two write-order entries";
  victim->write_order_positions[1] = victim->write_order_positions[0];
  AuditResult merged = MergeShardArtifacts(artifacts);
  EXPECT_FALSE(merged.accepted);
  EXPECT_EQ(merged.rule, kKarSeg013) << merged.reason;
}

TEST(ShardMergeAdversaryTest, MissingShardArtifact) {
  HonestRun run = RunApp("wiki", 60);
  std::vector<ShardArtifact> artifacts = HonestArtifacts(run, 2, 50);
  ASSERT_EQ(artifacts.size(), 2u);
  AuditResult merged = MergeShardArtifacts({artifacts[0]});
  EXPECT_FALSE(merged.accepted);
  EXPECT_EQ(merged.rule, kKarSeg015) << merged.reason;

  AuditResult empty = MergeShardArtifacts({});
  EXPECT_FALSE(empty.accepted);
  EXPECT_EQ(empty.rule, kKarSeg015) << empty.reason;
}

TEST(ShardMergeAdversaryTest, WriteOrderTotalsMismatch) {
  HonestRun run = RunApp("stacks", 60);
  std::vector<ShardArtifact> artifacts = HonestArtifacts(run, 2, 50);
  ASSERT_EQ(artifacts.size(), 2u);

  // One shard alleging a different total than the others is an inconsistent
  // artifact set (KAR-SEG-015)...
  std::vector<ShardArtifact> lone = artifacts;
  lone[1].write_order_total += 1;
  AuditResult merged = MergeShardArtifacts(lone);
  EXPECT_FALSE(merged.accepted);
  EXPECT_EQ(merged.rule, kKarSeg015) << merged.reason;

  // ...while a consistently inflated total leaves the stitch short
  // (KAR-SEG-013) — and must be caught before anything allocates `total`.
  std::vector<ShardArtifact> inflated = artifacts;
  for (ShardArtifact& a : inflated) {
    a.write_order_total += 1;
  }
  merged = MergeShardArtifacts(inflated);
  EXPECT_FALSE(merged.accepted);
  EXPECT_EQ(merged.rule, kKarSeg013) << merged.reason;
}

TEST(ShardMergeAdversaryTest, TruncatedBoundarySegment) {
  HonestRun run = RunApp("motd", 40);
  std::vector<ShardFile> shards =
      ShardRun(run.server.trace, run.server.advice, 50, ShardSpec{2, ShardMode::kHash});
  ASSERT_EQ(shards.size(), 2u);
  std::vector<uint8_t> bytes = EncodeShardFile(shards[0]);

  // Any truncation of the shard file is refused before audit.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  ShardLoadResult result = LoadShardBytes(truncated);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.rule.empty()) << result.reason;

  // Corrupting a byte inside the boundary frame trips the container CRC.
  std::vector<uint8_t> corrupted = bytes;
  ASSERT_GT(corrupted.size(), 24u);
  corrupted[24] ^= 0xFF;
  result = LoadShardBytes(corrupted);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.rule.empty()) << result.reason;
}

TEST(ShardMergeAdversaryTest, TruncatedArtifactRefused) {
  HonestRun run = RunApp("motd", 40);
  std::vector<ShardArtifact> artifacts = HonestArtifacts(run, 2, 50);
  ASSERT_EQ(artifacts.size(), 2u);
  std::vector<uint8_t> bytes = EncodeShardArtifact(artifacts[0]);
  for (size_t cut : {size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    ShardArtifactLoadResult result = LoadShardArtifactBytes(truncated);
    EXPECT_FALSE(result.ok) << "cut=" << cut;
    EXPECT_FALSE(result.rule.empty()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace karousos
