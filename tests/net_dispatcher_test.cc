// Event-loop dispatcher: fd readiness callbacks, one-shot timer wheel
// (ordering, cancellation, multi-revolution delays), cross-thread Post, and
// end-of-iteration deferred deletion.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/net/dispatcher.h"

namespace karousos {
namespace {

TEST(DispatcherTest, PostRunsOnLoopAndStopExits) {
  Dispatcher d;
  ASSERT_TRUE(d.ok());
  std::vector<int> order;
  d.Post([&] { order.push_back(1); });
  d.Post([&] { order.push_back(2); });
  d.Post([&d, &order] {
    order.push_back(3);
    d.Stop();
  });
  d.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(DispatcherTest, PostFromAnotherThreadWakesTheLoop) {
  Dispatcher d;
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    // The loop is (or will be) blocked in epoll_wait with no timers armed;
    // Post must wake it via the eventfd.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    d.Post([&] {
      ran = true;
      d.Stop();
    });
  });
  d.Run();
  poster.join();
  EXPECT_TRUE(ran);
}

TEST(DispatcherTest, FdReadinessDispatchesCallback) {
  Dispatcher d;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string got;
  ASSERT_TRUE(d.WatchFd(fds[0], EPOLLIN, [&](uint32_t) {
    char buf[16];
    ssize_t n = read(fds[0], buf, sizeof(buf));
    if (n > 0) {
      got.assign(buf, static_cast<size_t>(n));
    }
    d.UnwatchFd(fds[0]);
    d.Stop();
  }));
  ASSERT_EQ(write(fds[1], "ping", 4), 4);
  d.Run();
  EXPECT_EQ(got, "ping");
  close(fds[0]);
  close(fds[1]);
}

TEST(DispatcherTest, TimersFireInDelayOrder) {
  Dispatcher d;
  std::vector<int> order;
  d.Post([&] {
    d.AddTimer(60, [&] { order.push_back(3); });
    d.AddTimer(20, [&] { order.push_back(1); });
    d.AddTimer(40, [&] {
      order.push_back(2);
    });
    d.AddTimer(90, [&] {
      order.push_back(4);
      d.Stop();
    });
  });
  d.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(DispatcherTest, CancelledTimerNeverFires) {
  Dispatcher d;
  bool cancelled_fired = false;
  bool kept_fired = false;
  d.Post([&] {
    Dispatcher::TimerId victim = d.AddTimer(30, [&] { cancelled_fired = true; });
    d.AddTimer(30, [&] { kept_fired = true; });
    d.CancelTimer(victim);
    d.AddTimer(80, [&] { d.Stop(); });
  });
  d.Run();
  EXPECT_FALSE(cancelled_fired);
  EXPECT_TRUE(kept_fired);
}

TEST(DispatcherTest, LongDelayRidesTheWheelMultipleRounds) {
  // kWheelSlots * kTickMs = 1280ms per revolution; 1400ms needs a second
  // round. Keep the margin generous: the assertion is "not early".
  Dispatcher d;
  auto start = std::chrono::steady_clock::now();
  double fired_after_ms = 0;
  d.Post([&] {
    d.AddTimer(1400, [&] {
      fired_after_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      d.Stop();
    });
  });
  d.Run();
  EXPECT_GE(fired_after_ms, 1390.0);
  EXPECT_LT(fired_after_ms, 5000.0);
}

struct DeleteProbe : DeferredDeletable {
  explicit DeleteProbe(bool* flag) : flag_(flag) {}
  ~DeleteProbe() override { *flag_ = true; }
  bool* flag_;
};

TEST(DispatcherTest, DeferredDeleteHappensAfterTheCallback) {
  Dispatcher d;
  bool deleted = false;
  d.Post([&] {
    d.DeferDelete(std::make_unique<DeleteProbe>(&deleted));
    // Still alive inside the posting callback's iteration.
    EXPECT_FALSE(deleted);
    d.Post([&] {
      // By the next iteration the previous iteration's deferred set is gone.
      EXPECT_TRUE(deleted);
      d.Stop();
    });
  });
  d.Run();
  EXPECT_TRUE(deleted);
}

TEST(DispatcherTest, RunCanBeRestartedAfterStop) {
  Dispatcher d;
  int runs = 0;
  d.Post([&] {
    ++runs;
    d.Stop();
  });
  d.Run();
  d.Post([&] {
    ++runs;
    d.Stop();
  });
  d.Run();
  EXPECT_EQ(runs, 2);
}

}  // namespace
}  // namespace karousos
