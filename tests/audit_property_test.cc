// Property tests over the whole audit pipeline:
//
//  * Completeness-fuzz: random (app, workload, concurrency, seed) honest runs
//    are always accepted.
//  * Trace-tamper-fuzz: any mutation of a response payload is rejected, no
//    matter which request and what mutation.
//  * Advice-robustness-fuzz: random byte corruptions of the serialized
//    advice never crash the verifier and never cause a *tampered trace* to
//    be accepted. (Corrupted advice against an honest trace may legally
//    accept or reject — advice is a hint; soundness is about the trace.)
#include <gtest/gtest.h>

#include "src/audit/audit.h"
#include "src/common/rng.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  return MakeWikiApp();
}

struct RandomCase {
  std::string app;
  WorkloadKind kind = WorkloadKind::kMixed;
  int concurrency = 1;
  uint64_t seed = 0;
};

RandomCase DrawCase(Rng& rng) {
  RandomCase c;
  const char* apps[] = {"motd", "stacks", "wiki"};
  c.app = apps[rng.Below(3)];
  if (c.app == "wiki") {
    c.kind = WorkloadKind::kWikiMix;
  } else {
    WorkloadKind kinds[] = {WorkloadKind::kReadHeavy, WorkloadKind::kWriteHeavy,
                            WorkloadKind::kMixed};
    c.kind = kinds[rng.Below(3)];
  }
  c.concurrency = static_cast<int>(rng.Range(1, 20));
  c.seed = rng.Next();
  return c;
}

ServerRunResult Serve(const RandomCase& c, AppSpec& app, size_t requests) {
  WorkloadConfig wl;
  wl.app = c.app;
  wl.kind = c.kind;
  wl.requests = requests;
  wl.seed = c.seed;
  wl.connections = c.concurrency;
  ServerConfig config;
  config.concurrency = c.concurrency;
  config.seed = c.seed ^ 0xabcdef;
  Server server(*app.program, config);
  return server.Run(GenerateWorkload(wl));
}

TEST(AuditPropertyTest, RandomHonestRunsAreAccepted) {
  Rng rng(20240422);
  for (int iter = 0; iter < 20; ++iter) {
    RandomCase c = DrawCase(rng);
    AppSpec app = MakeApp(c.app);
    ServerRunResult run = Serve(c, app, 60);
    AuditResult audit =
        AuditOnly(app, run.trace, run.advice, IsolationLevel::kSerializable);
    EXPECT_TRUE(audit.accepted) << "iter " << iter << " app=" << c.app
                                << " c=" << c.concurrency << " seed=" << c.seed << ": "
                                << audit.reason;
  }
}

TEST(AuditPropertyTest, AnyResponseMutationIsRejected) {
  Rng rng(777);
  for (int iter = 0; iter < 12; ++iter) {
    RandomCase c = DrawCase(rng);
    AppSpec app = MakeApp(c.app);
    ServerRunResult run = Serve(c, app, 40);
    // Pick a random response and mutate it in a random way.
    std::vector<size_t> response_indices;
    for (size_t i = 0; i < run.trace.events.size(); ++i) {
      if (run.trace.events[i].kind == TraceEvent::Kind::kResponse) {
        response_indices.push_back(i);
      }
    }
    ASSERT_FALSE(response_indices.empty());
    TraceEvent& victim = run.trace.events[response_indices[rng.Below(response_indices.size())]];
    switch (rng.Below(3)) {
      case 0:
        victim.payload = Value("garbage");
        break;
      case 1:
        victim.payload = MakeMap({{"ok", false}});
        break;
      default: {
        // Subtle: perturb one field if it is a map, else null it.
        if (victim.payload.is_map() && !victim.payload.AsMap().empty()) {
          ValueMap m = victim.payload.AsMap();
          m.begin()->second = Value("flipped");
          victim.payload = Value(std::move(m));
        } else {
          victim.payload = Value();
        }
        break;
      }
    }
    AuditResult audit =
        AuditOnly(app, run.trace, run.advice, IsolationLevel::kSerializable);
    EXPECT_FALSE(audit.accepted)
        << "iter " << iter << " app=" << c.app << ": tampered response accepted";
  }
}

TEST(AuditPropertyTest, CorruptedAdviceNeverCrashesAndNeverHelpsATamperedTrace) {
  Rng rng(31337);
  AppSpec app = MakeStacksApp();
  RandomCase c{"stacks", WorkloadKind::kMixed, 6, 11};
  ServerRunResult run = Serve(c, app, 40);
  // Tamper the trace once; then try many corrupted-advice variants: none may
  // make the verifier accept the tampered trace.
  Trace tampered = run.trace;
  for (TraceEvent& ev : tampered.events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"forged", true}});
      break;
    }
  }
  ByteWriter writer;
  run.advice.Serialize(&writer);
  std::vector<uint8_t> pristine = writer.bytes();
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<uint8_t> bytes = pristine;
    // Corrupt 1-4 random bytes.
    for (uint64_t flips = 1 + rng.Below(4); flips > 0; --flips) {
      bytes[rng.Below(bytes.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
    }
    ByteReader reader(bytes);
    auto decoded = Advice::Deserialize(&reader);
    if (!decoded.has_value()) {
      continue;  // Malformed advice is rejected before verification; fine.
    }
    AuditResult audit = AuditOnly(app, tampered, *decoded, IsolationLevel::kSerializable);
    EXPECT_FALSE(audit.accepted) << "corrupted advice rescued a forged trace (iter " << iter
                                 << ")";
  }
}

TEST(AuditPropertyTest, VerifierIsDeterministic) {
  AppSpec app = MakeWikiApp();
  RandomCase c{"wiki", WorkloadKind::kWikiMix, 8, 5};
  ServerRunResult run = Serve(c, app, 60);
  AuditResult first = AuditOnly(app, run.trace, run.advice, IsolationLevel::kSerializable);
  AuditResult second = AuditOnly(app, run.trace, run.advice, IsolationLevel::kSerializable);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.reason, second.reason);
  EXPECT_EQ(first.stats.groups, second.stats.groups);
  EXPECT_EQ(first.stats.graph_nodes, second.stats.graph_nodes);
  EXPECT_EQ(first.stats.graph_edges, second.stats.graph_edges);
  EXPECT_EQ(first.stats.ops_executed, second.stats.ops_executed);
}

}  // namespace
}  // namespace karousos
