// Unannotated ("untracked") variables (§5): not annotating a variable tells
// Karousos to assume every access is R-ordered. If that assumption holds,
// audits behave normally; if it is violated (the variable is really shared
// across requests), Completeness is lost — some faithful executions are
// rejected — but Soundness never is: the verifier errs toward rejection,
// never toward accepting a wrong trace.
#include <gtest/gtest.h>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"

namespace karousos {
namespace {

// Config is written once at init and only read afterwards: the legitimate
// use of an unannotated variable.
AppSpec MakeConfigApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("config_handle", [](Ctx& ctx) {
    MultiValue greeting = ctx.ReadVar("config", VarScope::kUntracked);
    ctx.Respond(MvMakeMap({{"greeting", MvField(greeting, "greeting")},
                           {"to", MvField(ctx.Input(), "name")}}));
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("config", VarScope::kUntracked);
    ctx.WriteVar("config", VarScope::kUntracked,
                 MvMakeMap({{"greeting", MultiValue("hello")}}));
    ctx.RegisterHandler(kRequestEventName, "config_handle");
  });
  return AppSpec{"config", std::move(program)};
}

// A counter in an unannotated variable that is *shared across requests*: the
// developer failed to annotate a loggable variable.
AppSpec MakeBrokenCounterApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("broken_handle", [](Ctx& ctx) {
    MultiValue next = MvAdd(ctx.ReadVar("hits", VarScope::kUntracked), MultiValue(1));
    ctx.WriteVar("hits", VarScope::kUntracked, next);
    ctx.Respond(MvMakeMap({{"hits", next}}));
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("hits", VarScope::kUntracked);
    ctx.WriteVar("hits", VarScope::kUntracked, MultiValue(0));
    ctx.RegisterHandler(kRequestEventName, "broken_handle");
  });
  return AppSpec{"broken", std::move(program)};
}

TEST(UntrackedVarTest, InitOnlyUsageAuditsCleanlyWithZeroVarAdvice) {
  AppSpec app = MakeConfigApp();
  std::vector<Value> inputs;
  for (int i = 0; i < 10; ++i) {
    inputs.push_back(MakeMap({{"name", Value("u" + std::to_string(i))}}));
  }
  ServerConfig config;
  config.concurrency = 4;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  EXPECT_TRUE(result.audit.accepted) << result.audit.reason;
  // No annotations -> no variable logs at all.
  EXPECT_EQ(result.server.advice.var_log_entry_count(), 0u);
}

TEST(UntrackedVarTest, CrossRequestSharingLosesCompletenessNotSoundness) {
  AppSpec app = MakeBrokenCounterApp();
  std::vector<Value> inputs(6, MakeMap({{"op", "hit"}}));
  ServerConfig config;
  config.concurrency = 3;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  // The server executed faithfully (responses 1..6 in schedule order), but
  // the verifier cannot reproduce cross-request flows through an unannotated
  // variable: it must reject — a Completeness loss, exactly as §5 predicts.
  EXPECT_FALSE(result.audit.accepted);
  // The fix is one annotation away: the same program with a tracked variable
  // audits cleanly.
  auto fixed = std::make_shared<Program>();
  fixed->DefineFunction("broken_handle", [](Ctx& ctx) {
    MultiValue next = MvAdd(ctx.ReadVar("hits", VarScope::kGlobal), MultiValue(1));
    ctx.WriteVar("hits", VarScope::kGlobal, next);
    ctx.Respond(MvMakeMap({{"hits", next}}));
  });
  fixed->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("hits", VarScope::kGlobal);
    ctx.WriteVar("hits", VarScope::kGlobal, MultiValue(0));
    ctx.RegisterHandler(kRequestEventName, "broken_handle");
  });
  AppSpec fixed_app{"fixed", fixed};
  AuditPipelineResult fixed_result = RunAndAudit(fixed_app, inputs, config);
  EXPECT_TRUE(fixed_result.audit.accepted) << fixed_result.audit.reason;
}

TEST(UntrackedVarTest, AnnotationLintFlagsSharedUnannotatedVariables) {
  // The annotation advisor (the paper's future-work item): a lint-mode run
  // reports exactly which unannotated variables experienced R-concurrent
  // accesses — the ones that must be marked loggable.
  AppSpec broken = MakeBrokenCounterApp();
  std::vector<Value> inputs(10, MakeMap({{"op", "hit"}}));
  ServerConfig config;
  config.concurrency = 4;
  config.annotation_lint = true;
  Server server(*broken.program, config);
  ServerRunResult run = server.Run(inputs);
  ASSERT_EQ(run.lint_violations.size(), 1u);
  EXPECT_EQ(run.lint_violations.begin()->first, "hits");
  EXPECT_GT(run.lint_violations.begin()->second, 0u);

  // The clean config app lints clean.
  AppSpec clean = MakeConfigApp();
  Server clean_server(*clean.program, config);
  ServerRunResult clean_run =
      clean_server.Run({MakeMap({{"name", "a"}}), MakeMap({{"name", "b"}})});
  EXPECT_TRUE(clean_run.lint_violations.empty());
}

TEST(UntrackedVarTest, OverAnnotationOnlyCostsAdvice) {
  // Marking a variable loggable when it has no R-concurrent accesses is pure
  // overhead — Soundness and Completeness are unaffected (§5).
  auto program = std::make_shared<Program>();
  program->DefineFunction("over_handle", [](Ctx& ctx) {
    // Request-scoped tracked variable used only within one handler.
    ctx.DeclareVar("scratch", VarScope::kRequest);
    ctx.WriteVar("scratch", VarScope::kRequest, MvField(ctx.Input(), "x"));
    ctx.Respond(MvMakeMap({{"x", ctx.ReadVar("scratch", VarScope::kRequest)}}));
  });
  program->SetInit(
      [](Ctx& ctx) { ctx.RegisterHandler(kRequestEventName, "over_handle"); });
  AppSpec app{"over", program};
  std::vector<Value> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(MakeMap({{"x", i}}));
  }
  ServerConfig config;
  config.concurrency = 4;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  EXPECT_TRUE(result.audit.accepted) << result.audit.reason;
  // All accesses are R-ordered (same handler), so Karousos logs nothing.
  EXPECT_EQ(result.server.advice.var_log_entry_count(), 0u);
}

}  // namespace
}  // namespace karousos
