// Happens-before race detector tests (src/analysis/race.h): the §5
// soundness precondition for untracked variables — every access R-ordered —
// checked mechanically over the server's untracked-access log.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/race.h"
#include "src/apps/app_util.h"
#include "src/audit/audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

// Config is written once at init and only read afterwards: the legitimate
// use of an unannotated variable (mirrors untracked_var_test.cc).
AppSpec MakeConfigApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("config_handle", [](Ctx& ctx) {
    MultiValue greeting = ctx.ReadVar("config", VarScope::kUntracked);
    ctx.Respond(MvMakeMap({{"greeting", MvField(greeting, "greeting")},
                           {"to", MvField(ctx.Input(), "name")}}));
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("config", VarScope::kUntracked);
    ctx.WriteVar("config", VarScope::kUntracked,
                 MvMakeMap({{"greeting", MultiValue("hello")}}));
    ctx.RegisterHandler(kRequestEventName, "config_handle");
  });
  return AppSpec{"config", std::move(program)};
}

// The ablation scenario from untracked_var_test.cc: a counter shared across
// requests through an unannotated variable.
AppSpec MakeBrokenCounterApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("broken_handle", [](Ctx& ctx) {
    MultiValue next = MvAdd(ctx.ReadVar("hits", VarScope::kUntracked), MultiValue(1));
    ctx.WriteVar("hits", VarScope::kUntracked, next);
    ctx.Respond(MvMakeMap({{"hits", next}}));
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("hits", VarScope::kUntracked);
    ctx.WriteVar("hits", VarScope::kUntracked, MultiValue(0));
    ctx.RegisterHandler(kRequestEventName, "broken_handle");
  });
  return AppSpec{"broken", std::move(program)};
}

// Two sibling child handlers of the same request both bump an untracked
// variable: siblings are A-concurrent, so this races within one request.
AppSpec MakeSiblingRaceApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("sib_root", [](Ctx& ctx) {
    ctx.Emit("work", ctx.Input());
    ctx.Emit("work", ctx.Input());
    ctx.Respond(MultiValue("ok"));
  });
  program->DefineFunction("sib_work", [](Ctx& ctx) {
    MultiValue next = MvAdd(ctx.ReadVar("shared", VarScope::kUntracked), MultiValue(1));
    ctx.WriteVar("shared", VarScope::kUntracked, next);
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("shared", VarScope::kUntracked);
    ctx.WriteVar("shared", VarScope::kUntracked, MultiValue(0));
    ctx.RegisterHandler(kRequestEventName, "sib_root");
    ctx.RegisterHandler("work", "sib_work");
  });
  return AppSpec{"sibling", std::move(program)};
}

// Parent writes, then its child handler reads and writes: every access pair
// is ordered by A (the parent's label prefixes the child's), so with one
// request there is nothing to report.
AppSpec MakeParentChildApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("ord_root", [](Ctx& ctx) {
    ctx.WriteVar("state", VarScope::kUntracked, MultiValue(1));
    ctx.Emit("next", ctx.Input());
    ctx.Respond(MultiValue("ok"));
  });
  program->DefineFunction("ord_next", [](Ctx& ctx) {
    MultiValue v = ctx.ReadVar("state", VarScope::kUntracked);
    ctx.WriteVar("state", VarScope::kUntracked, MvAdd(v, MultiValue(1)));
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("state", VarScope::kUntracked);
    ctx.RegisterHandler(kRequestEventName, "ord_root");
    ctx.RegisterHandler("next", "ord_next");
  });
  return AppSpec{"ordered", std::move(program)};
}

ServerRunResult RunApp(const AppSpec& app, const std::vector<Value>& inputs,
                       int concurrency) {
  ServerConfig config;
  config.concurrency = concurrency;
  Server server(*app.program, config);
  return server.Run(inputs);
}

bool HasRule(const std::vector<RaceFinding>& findings, const std::string& rule) {
  for (const RaceFinding& f : findings) {
    if (f.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(AnalysisRaceTest, BrokenCounterAblationIsFlagged) {
  std::vector<Value> inputs(6, MakeMap({{"op", "hit"}}));
  ServerRunResult run = RunApp(MakeBrokenCounterApp(), inputs, 3);
  ASSERT_FALSE(run.untracked_accesses.empty());
  std::vector<RaceFinding> findings = DetectUntrackedRaces(run.untracked_accesses);
  ASSERT_FALSE(findings.empty());
  // Cross-request read/write and write/write pairs on "hits".
  EXPECT_TRUE(HasRule(findings, kRuleRaceWriteWrite));
  EXPECT_TRUE(HasRule(findings, kRuleRaceReadWrite));
  for (const RaceFinding& f : findings) {
    EXPECT_EQ(f.var_name, "hits");
  }
}

TEST(AnalysisRaceTest, InitOnlyConfigIsSilent) {
  std::vector<Value> inputs;
  for (int i = 0; i < 10; ++i) {
    inputs.push_back(MakeMap({{"name", Value("u" + std::to_string(i))}}));
  }
  ServerRunResult run = RunApp(MakeConfigApp(), inputs, 4);
  // Accesses are recorded (init write + per-request reads)...
  EXPECT_FALSE(run.untracked_accesses.empty());
  // ...but a variable never written after initialization cannot race.
  EXPECT_TRUE(DetectUntrackedRaces(run.untracked_accesses).empty());
}

TEST(AnalysisRaceTest, HonestAppsAreSilent) {
  for (const char* name : {"motd", "stacks", "wiki"}) {
    WorkloadConfig wl;
    wl.app = name;
    wl.kind = std::string(name) == "wiki" ? WorkloadKind::kWikiMix : WorkloadKind::kMixed;
    wl.requests = 60;
    wl.seed = 3;
    wl.connections = 8;
    AppSpec app = std::string(name) == "motd"     ? MakeMotdApp()
                  : std::string(name) == "stacks" ? MakeStacksApp()
                                                  : MakeWikiApp();
    ServerRunResult run = RunApp(app, GenerateWorkload(wl), 8);
    std::vector<RaceFinding> findings = DetectUntrackedRaces(run.untracked_accesses);
    EXPECT_TRUE(findings.empty()) << name << ": " << findings.front().Describe();
  }
}

TEST(AnalysisRaceTest, SameRequestSiblingHandlersRace) {
  // One request, concurrency 1: the race is structural (A-concurrent
  // siblings), not a scheduling accident.
  ServerRunResult run = RunApp(MakeSiblingRaceApp(), {MakeMap({{"x", 1}})}, 1);
  std::vector<RaceFinding> findings = DetectUntrackedRaces(run.untracked_accesses);
  ASSERT_FALSE(findings.empty());
  EXPECT_TRUE(HasRule(findings, kRuleRaceWriteWrite));
  for (const RaceFinding& f : findings) {
    EXPECT_EQ(f.first.rid, f.second.rid) << f.Describe();
  }
}

TEST(AnalysisRaceTest, ParentThenChildAccessesAreOrdered) {
  ServerRunResult run = RunApp(MakeParentChildApp(), {MakeMap({{"x", 1}})}, 1);
  ASSERT_FALSE(run.untracked_accesses.empty());
  EXPECT_TRUE(DetectUntrackedRaces(run.untracked_accesses).empty());
}

TEST(AnalysisRaceTest, RecordingCanBeDisabled) {
  ServerConfig config;
  config.concurrency = 3;
  config.record_untracked_accesses = false;
  AppSpec app = MakeBrokenCounterApp();
  Server server(*app.program, config);
  ServerRunResult run = server.Run(std::vector<Value>(6, MakeMap({{"op", "hit"}})));
  EXPECT_TRUE(run.untracked_accesses.empty());
}

TEST(AnalysisRaceTest, AuditPipelineSurfacesRaceWarnings) {
  std::vector<Value> inputs(6, MakeMap({{"op", "hit"}}));
  ServerConfig config;
  config.concurrency = 3;
  AuditPipelineResult result = RunAndAudit(MakeBrokenCounterApp(), inputs, config);
  // The audit still rejects (Completeness loss, as §5 predicts), and the
  // diagnostics explain why: the untracked accesses race.
  EXPECT_FALSE(result.audit.accepted);
  bool saw_race = false;
  for (const LintDiagnostic& d : result.audit.diagnostics) {
    if (d.rule == kRuleRaceWriteWrite || d.rule == kRuleRaceReadWrite) {
      EXPECT_EQ(d.severity, LintSeverity::kWarning);
      EXPECT_NE(d.message.find("hits"), std::string::npos);
      saw_race = true;
    }
  }
  EXPECT_TRUE(saw_race);

  // The honest apps' pipelines carry no race diagnostics.
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 30;
  wl.seed = 5;
  wl.connections = 4;
  ServerConfig honest;
  honest.concurrency = 4;
  AuditPipelineResult clean = RunAndAudit(MakeStacksApp(), GenerateWorkload(wl), honest);
  EXPECT_TRUE(clean.audit.accepted) << clean.audit.reason;
  EXPECT_TRUE(clean.audit.diagnostics.empty());
}

}  // namespace
}  // namespace karousos
