#include "src/common/flat_map.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/ids.h"

namespace karousos {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<uint64_t, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.emplace(1, "one").second);
  EXPECT_TRUE(m.emplace(2, "two").second);
  EXPECT_FALSE(m.emplace(1, "uno").second);  // Duplicate keeps the first.
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(1), m.end());
  EXPECT_EQ(m.find(1)->second, "one");
  EXPECT_EQ(m.find(3), m.end());
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.find(1), m.end());
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, SubscriptInsertsDefault) {
  FlatMap<uint64_t, uint64_t> m;
  m[5] += 3;
  m[5] += 4;
  EXPECT_EQ(m[5], 7u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, SurvivesRehashWithManyKeys) {
  FlatMap<uint64_t, uint64_t> m;
  constexpr uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) {
    m.emplace(i, i * 3);
  }
  EXPECT_EQ(m.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    auto it = m.find(i);
    ASSERT_NE(it, m.end()) << i;
    EXPECT_EQ(it->second, i * 3);
  }
  EXPECT_FALSE(m.contains(kN + 1));
}

TEST(FlatMapTest, EraseKeepsRemainderReachable) {
  FlatMap<uint64_t, uint64_t> m;
  for (uint64_t i = 0; i < 1000; ++i) {
    m.emplace(i, i);
  }
  // Backward-shift deletion: removing every even key must leave every odd
  // key findable (tombstone-free tables are where naive deletion breaks).
  for (uint64_t i = 0; i < 1000; i += 2) {
    EXPECT_TRUE(m.erase(i));
  }
  EXPECT_EQ(m.size(), 500u);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(m.contains(i), i % 2 == 1) << i;
  }
}

TEST(FlatMapTest, IterationVisitsEachEntryOnce) {
  FlatMap<uint64_t, uint64_t> m;
  for (uint64_t i = 0; i < 777; ++i) {
    m.emplace(i * 17, i);
  }
  std::map<uint64_t, uint64_t> seen;
  for (const auto& [k, v] : m) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate key " << k;
  }
  EXPECT_EQ(seen.size(), 777u);
  for (uint64_t i = 0; i < 777; ++i) {
    EXPECT_EQ(seen.at(i * 17), i);
  }
}

// The determinism contract the verifier relies on: the *content* of the map
// is independent of capacity history, so code that sorts keys explicitly gets
// identical results no matter how the table grew.
TEST(FlatMapTest, ContentIndependentOfReserveHistory) {
  FlatMap<uint64_t, uint64_t> grown;
  FlatMap<uint64_t, uint64_t> reserved;
  reserved.reserve(4096);
  for (uint64_t i = 0; i < 3000; ++i) {
    grown.emplace(i * 31, i);
    reserved.emplace(i * 31, i);
  }
  std::vector<std::pair<uint64_t, uint64_t>> a(grown.begin(), grown.end());
  std::vector<std::pair<uint64_t, uint64_t>> b(reserved.begin(), reserved.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(FlatSetTest, InsertContainsErase) {
  FlatSet<uint64_t> s;
  EXPECT_TRUE(s.insert(10).second);
  EXPECT_FALSE(s.insert(10).second);
  EXPECT_TRUE(s.contains(10));
  EXPECT_EQ(s.count(11), 0u);
  std::vector<uint64_t> more = {11, 12, 13};
  s.insert(more.begin(), more.end());
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.erase(12));
  EXPECT_FALSE(s.contains(12));
}

TEST(FlatSetTest, WorksWithOpRefKeys) {
  FlatSet<OpRef> s;
  for (uint64_t rid = 1; rid <= 100; ++rid) {
    for (OpNum op = 1; op <= 10; ++op) {
      EXPECT_TRUE(s.insert(OpRef{rid, 42, op}).second);
    }
  }
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_TRUE(s.contains(OpRef{7, 42, 3}));
  EXPECT_FALSE(s.contains(OpRef{7, 43, 3}));
}

// Regression for the weak pre-splitmix hash: sequential rids/opnums — the
// distribution the collector actually produces — must spread over a
// power-of-two table with no badly overloaded bucket.
template <typename Key, typename Hash>
double MaxBucketSkew(const std::vector<Key>& keys, size_t buckets) {
  std::vector<size_t> load(buckets, 0);
  Hash h;
  for (const Key& k : keys) {
    ++load[h(k) & (buckets - 1)];
  }
  size_t max_load = *std::max_element(load.begin(), load.end());
  double expected = static_cast<double>(keys.size()) / static_cast<double>(buckets);
  return static_cast<double>(max_load) / expected;
}

TEST(HashDistributionTest, SequentialOpRefsSpreadEvenly) {
  std::vector<OpRef> keys;
  for (uint64_t rid = 1; rid <= 512; ++rid) {
    for (OpNum op = 1; op <= 32; ++op) {
      keys.push_back(OpRef{rid, 0x9000 + (rid % 7), op});
    }
  }
  EXPECT_LT((MaxBucketSkew<OpRef, OpRefHash>(keys, 4096)), 4.0);
}

TEST(HashDistributionTest, SequentialTxOpRefsSpreadEvenly) {
  std::vector<TxOpRef> keys;
  for (uint64_t rid = 1; rid <= 1024; ++rid) {
    for (uint32_t idx = 1; idx <= 16; ++idx) {
      keys.push_back(TxOpRef{rid, rid * 2 + 1, idx});
    }
  }
  EXPECT_LT((MaxBucketSkew<TxOpRef, TxOpRefHash>(keys, 4096)), 4.0);
}

TEST(HashDistributionTest, SequentialIdsSpreadEvenly) {
  std::vector<uint64_t> keys(16384);
  for (uint64_t i = 0; i < keys.size(); ++i) {
    keys[i] = i;  // The pathological input for identity-style hashes.
  }
  EXPECT_LT((MaxBucketSkew<uint64_t, FlatHash<uint64_t>>(keys, 2048)), 4.0);
}

}  // namespace
}  // namespace karousos
