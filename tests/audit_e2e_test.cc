// End-to-end Completeness (§2.1): for every application, workload, degree of
// concurrency, collection mode, and isolation level in the matrix, an honest
// server's trace + advice must be ACCEPTED by the verifier.
#include <gtest/gtest.h>

#include "src/audit/audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  return MakeWikiApp();
}

struct MatrixParam {
  std::string app;
  WorkloadKind kind;
  int concurrency;
  CollectMode mode;
  IsolationLevel isolation;
};

std::string ParamName(const testing::TestParamInfo<MatrixParam>& info) {
  const MatrixParam& p = info.param;
  std::string name = p.app;
  switch (p.kind) {
    case WorkloadKind::kReadHeavy:
      name += "_reads";
      break;
    case WorkloadKind::kWriteHeavy:
      name += "_writes";
      break;
    case WorkloadKind::kMixed:
      name += "_mixed";
      break;
    case WorkloadKind::kWikiMix:
      name += "_wikimix";
      break;
  }
  name += "_c" + std::to_string(p.concurrency);
  name += p.mode == CollectMode::kKarousos ? "_karousos" : "_orochi";
  switch (p.isolation) {
    case IsolationLevel::kSerializable:
      name += "_ser";
      break;
    case IsolationLevel::kReadCommitted:
      name += "_rc";
      break;
    case IsolationLevel::kReadUncommitted:
      name += "_ru";
      break;
  }
  return name;
}

class CompletenessTest : public testing::TestWithParam<MatrixParam> {};

TEST_P(CompletenessTest, HonestServerIsAccepted) {
  const MatrixParam& p = GetParam();
  AppSpec app = MakeApp(p.app);
  WorkloadConfig wl;
  wl.app = p.app;
  wl.kind = p.kind;
  wl.requests = 120;
  wl.seed = 42;
  wl.connections = p.concurrency;
  ServerConfig config;
  config.mode = p.mode;
  config.isolation = p.isolation;
  config.concurrency = p.concurrency;
  config.seed = 99;
  AuditPipelineResult result = RunAndAudit(app, GenerateWorkload(wl), config);
  std::string reason;
  ASSERT_TRUE(result.server.trace.IsBalanced(&reason)) << reason;
  EXPECT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.audit.stats.group_lane_total, 120u);
  EXPECT_GE(result.audit.stats.groups, 1u);
  EXPECT_LE(result.audit.stats.groups, 120u);
}

std::vector<MatrixParam> BuildMatrix() {
  std::vector<MatrixParam> params;
  for (const char* app : {"motd", "stacks", "wiki"}) {
    std::vector<WorkloadKind> kinds;
    if (std::string(app) == "wiki") {
      kinds = {WorkloadKind::kWikiMix};
    } else {
      kinds = {WorkloadKind::kReadHeavy, WorkloadKind::kWriteHeavy, WorkloadKind::kMixed};
    }
    for (WorkloadKind kind : kinds) {
      for (int concurrency : {1, 4, 16}) {
        for (CollectMode mode : {CollectMode::kKarousos, CollectMode::kOrochi}) {
          params.push_back({app, kind, concurrency, mode, IsolationLevel::kSerializable});
        }
      }
    }
  }
  // Weaker isolation levels, exercised through the transactional apps.
  for (const char* app : {"stacks", "wiki"}) {
    for (IsolationLevel level :
         {IsolationLevel::kReadCommitted, IsolationLevel::kReadUncommitted}) {
      params.push_back({app,
                        std::string(app) == "wiki" ? WorkloadKind::kWikiMix
                                                   : WorkloadKind::kMixed,
                        8, CollectMode::kKarousos, level});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Matrix, CompletenessTest, testing::ValuesIn(BuildMatrix()), ParamName);

TEST(AuditBasicsTest, BatchingDeduplicatesWork) {
  // 60 identical-control-flow MOTD gets: one re-execution group, one handler
  // body execution for all 60 lanes.
  AppSpec app = MakeMotdApp();
  std::vector<Value> inputs(60, MakeMap({{"op", "get"}, {"day", "mon"}}));
  ServerConfig config;
  config.concurrency = 4;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.audit.stats.groups, 1u);
  EXPECT_EQ(result.audit.stats.handler_executions, 1u);
  EXPECT_EQ(result.audit.stats.handler_lanes, 60u);
}

TEST(AuditBasicsTest, KarousosGroupsReorderedTreesTogether) {
  // Two list requests whose child handlers interleave differently across
  // requests still share a Karousos group (same tree), while Orochi-JS may
  // split them. With sequential execution both group identically.
  AppSpec app = MakeStacksApp();
  std::vector<Value> inputs = {
      MakeMap({{"op", "submit"}, {"dump", "a"}}),
      MakeMap({{"op", "submit"}, {"dump", "b"}}),
      MakeMap({{"op", "list"}}),
      MakeMap({{"op", "list"}}),
  };
  ServerConfig config;
  config.concurrency = 1;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  // The two lists induce the same tree (2 digests -> 2 children each).
  EXPECT_EQ(result.server.advice.tags.at(3), result.server.advice.tags.at(4));
}

TEST(AuditBasicsTest, EmptyTraceIsAccepted) {
  AppSpec app = MakeMotdApp();
  ServerConfig config;
  AuditPipelineResult result = RunAndAudit(app, {}, config);
  EXPECT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.audit.stats.groups, 0u);
}

TEST(AuditBasicsTest, AdviceSurvivesWireRoundTripAndStillVerifies) {
  AppSpec app = MakeWikiApp();
  WorkloadConfig wl;
  wl.app = "wiki";
  wl.kind = WorkloadKind::kWikiMix;
  wl.requests = 80;
  wl.connections = 8;
  ServerConfig config;
  config.concurrency = 8;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));

  ByteWriter writer;
  run.advice.Serialize(&writer);
  ByteReader reader(writer.bytes());
  auto decoded = Advice::Deserialize(&reader);
  ASSERT_TRUE(decoded.has_value());

  AuditResult audit = AuditOnly(app, run.trace, *decoded, config.isolation);
  EXPECT_TRUE(audit.accepted) << audit.reason;
}

}  // namespace
}  // namespace karousos
