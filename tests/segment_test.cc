// Segment container wire format: golden bytes (the layout is a compatibility
// promise — collectors and verifiers may be built from different revisions),
// roundtrips through writer/reader, format-version rejection, and the epoch
// slicer's structural invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/common/segment.h"
#include "src/common/serde.h"
#include "src/server/rollover.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// The exact bytes of a one-frame container: magic, version, then
// kind=kTrace(1) | epoch=5 | length=9 | crc32("123456789") little-endian |
// payload. 0xCBF43926 is the standard CRC-32 check value, so this test pins
// the polynomial, the init/final xor, and the byte order all at once.
TEST(SegmentFormatTest, GoldenBytes) {
  SegmentWriter writer;
  writer.Append(SegmentKind::kTrace, 5, Bytes("123456789"));
  ASSERT_TRUE(writer.ok()) << writer.error();

  const std::vector<uint8_t> expected = {
      'K', 'S', 'E', 'G',      // magic
      0x01,                    // format version
      0x01,                    // kind: kTrace
      0x05,                    // epoch varint
      0x09,                    // payload length varint
      0x26, 0x39, 0xf4, 0xcb,  // crc 0xCBF43926, little-endian
      '1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(writer.bytes(), expected);
}

TEST(SegmentFormatTest, RoundtripMultipleFrames) {
  SegmentWriter writer;
  writer.Append(SegmentKind::kTrace, 0, Bytes("window-zero"));
  writer.Append(SegmentKind::kAdvice, 0, Bytes("slice-zero"));
  writer.Append(SegmentKind::kTrace, 1, {});  // Empty payloads are legal.
  writer.Append(SegmentKind::kCheckpoint, 1, Bytes("carry"));
  ASSERT_TRUE(writer.ok());
  std::vector<uint8_t> bytes = writer.Take();

  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  ASSERT_NE(reader, nullptr) << error;
  SegmentRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.kind, SegmentKind::kTrace);
  EXPECT_EQ(rec.epoch, 0u);
  EXPECT_EQ(rec.payload, Bytes("window-zero"));
  EXPECT_EQ(rec.crc, Crc32(rec.payload));
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.kind, SegmentKind::kAdvice);
  EXPECT_EQ(rec.payload, Bytes("slice-zero"));
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.kind, SegmentKind::kTrace);
  EXPECT_EQ(rec.epoch, 1u);
  EXPECT_TRUE(rec.payload.empty());
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.kind, SegmentKind::kCheckpoint);
  EXPECT_EQ(rec.payload, Bytes("carry"));
  EXPECT_FALSE(reader->Next(&rec));
  EXPECT_TRUE(reader->ok()) << reader->error();
}

TEST(SegmentFormatTest, FutureFormatVersionIsRejected) {
  SegmentWriter writer;
  writer.Append(SegmentKind::kTrace, 0, Bytes("payload"));
  std::vector<uint8_t> bytes = writer.Take();
  bytes[4] = kSegmentFormatVersionV2 + 1;

  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  EXPECT_EQ(reader, nullptr);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SegmentFormatTest, V2FlagsRoundtripAndUnknownBitsReject) {
  SegmentWriter writer(kSegmentFormatVersionV2);
  writer.Append(SegmentKind::kTrace, 0, kFrameFlagLanes | kFrameFlagDict, Bytes("compact"));
  writer.Append(SegmentKind::kAdvice, 0, /*flags=*/0, Bytes("raw-in-v2"));
  ASSERT_TRUE(writer.ok()) << writer.error();
  std::vector<uint8_t> bytes = writer.Take();

  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  ASSERT_NE(reader, nullptr) << error;
  EXPECT_EQ(reader->format_version(), kSegmentFormatVersionV2);
  SegmentRecord rec;
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.flags, kFrameFlagLanes | kFrameFlagDict);
  EXPECT_EQ(rec.payload, Bytes("compact"));
  ASSERT_TRUE(reader->Next(&rec));
  EXPECT_EQ(rec.flags, 0u);
  EXPECT_FALSE(reader->Next(&rec));
  EXPECT_TRUE(reader->ok()) << reader->error();

  // The flags byte is the 6th byte of the first frame (header is 5 bytes);
  // setting a bit outside the known mask must reject.
  bytes[6] |= 0x80;
  auto reject = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  ASSERT_NE(reject, nullptr) << error;
  EXPECT_FALSE(reject->Next(&rec));
  EXPECT_FALSE(reject->ok());
  EXPECT_NE(reject->error().find("unknown frame flags"), std::string::npos) << reject->error();
}

TEST(SegmentFormatTest, V1WriterRefusesFlags) {
  SegmentWriter writer;  // v1
  writer.Append(SegmentKind::kTrace, 0, kFrameFlagBlock, Bytes("x"));
  EXPECT_FALSE(writer.ok());
  EXPECT_NE(writer.error().find("version 2"), std::string::npos) << writer.error();
}

TEST(SegmentFormatTest, WrongMagicIsRejected) {
  std::vector<uint8_t> bytes = Bytes("KSEX");
  bytes.push_back(kSegmentFormatVersion);
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  EXPECT_EQ(reader, nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(LooksLikeSegmentFile(bytes));

  SegmentWriter writer;
  writer.Append(SegmentKind::kTrace, 0, {});
  EXPECT_TRUE(LooksLikeSegmentFile(writer.bytes()));
}

// --- Slicer invariants over a real run -------------------------------------

ServerRunResult RunStacks(size_t requests) {
  AppSpec app = MakeStacksApp();
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = requests;
  ServerConfig config;
  config.concurrency = 8;
  Server server(*app.program, config);
  return server.Run(GenerateWorkload(wl));
}

TEST(EpochSlicerTest, WindowsConcatenateToTheFullTrace) {
  ServerRunResult run = RunStacks(60);
  EpochSlices slices = SliceRun(run.trace, run.advice, 7);
  ASSERT_FALSE(slices.segments.empty());
  std::vector<TraceEvent> rebuilt;
  uint64_t expected_epoch = 0;
  for (const EpochSegment& seg : slices.segments) {
    EXPECT_EQ(seg.epoch, expected_epoch++);
    rebuilt.insert(rebuilt.end(), seg.window.begin(), seg.window.end());
  }
  ASSERT_EQ(rebuilt.size(), run.trace.events.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i].kind, run.trace.events[i].kind) << "event " << i;
    EXPECT_EQ(rebuilt[i].rid, run.trace.events[i].rid) << "event " << i;
  }
}

TEST(EpochSlicerTest, WriteOrderChunksConcatenateToTheGlobalOrder) {
  ServerRunResult run = RunStacks(60);
  EpochSlices slices = SliceRun(run.trace, run.advice, 7);
  WriteOrder rebuilt;
  for (const EpochSegment& seg : slices.segments) {
    rebuilt.insert(rebuilt.end(), seg.advice.write_order.begin(),
                   seg.advice.write_order.end());
  }
  EXPECT_EQ(rebuilt, run.advice.write_order);
}

TEST(EpochSlicerTest, AdviceIsPartitionedByOwningRid) {
  ServerRunResult run = RunStacks(60);
  const uint64_t kEpochSize = 7;
  EpochSlices slices = SliceRun(run.trace, run.advice, kEpochSize);
  size_t tags = 0;
  for (const EpochSegment& seg : slices.segments) {
    for (const auto& [rid, tag] : seg.advice.tags) {
      uint64_t owner = EpochOfRid(rid, kEpochSize);
      // Beyond-trace rids clamp into the final slice; everything else lands
      // exactly in its owning epoch.
      EXPECT_EQ(seg.epoch, std::min<uint64_t>(owner, slices.segments.size() - 1));
      ++tags;
    }
  }
  EXPECT_EQ(tags, run.advice.tags.size());
}

TEST(EpochSlicerTest, SegmentStreamEncodingRoundtrips) {
  ServerRunResult run = RunStacks(30);
  EpochSlices slices = SliceRun(run.trace, run.advice, 5);
  std::vector<uint8_t> trace_bytes = EncodeTraceSegments(slices);
  std::vector<uint8_t> advice_bytes = EncodeAdviceSegments(slices);
  ASSERT_TRUE(LooksLikeSegmentFile(trace_bytes));
  ASSERT_TRUE(LooksLikeSegmentFile(advice_bytes));

  std::string error;
  auto reader = SegmentReader::FromBytes(advice_bytes.data(), advice_bytes.size(), &error);
  ASSERT_NE(reader, nullptr) << error;
  SegmentRecord rec;
  size_t frames = 0;
  size_t tags = 0;
  while (reader->Next(&rec)) {
    ASSERT_EQ(rec.kind, SegmentKind::kAdvice);
    auto payload = DecodeAdviceSegmentPayload(rec.payload);
    ASSERT_TRUE(payload.has_value()) << "frame " << frames;
    tags += payload->advice.tags.size();
    ++frames;
  }
  EXPECT_TRUE(reader->ok()) << reader->error();
  EXPECT_EQ(frames, slices.segments.size());
  EXPECT_EQ(tags, run.advice.tags.size());
}

}  // namespace
}  // namespace karousos
