#include "src/multivalue/multivalue.h"

#include <gtest/gtest.h>

#include "src/apps/app_util.h"

namespace karousos {
namespace {

TEST(MultiValueTest, CollapsedByDefault) {
  MultiValue mv(Value(3));
  EXPECT_TRUE(mv.collapsed());
  EXPECT_EQ(mv.Lane(0), Value(3));
  EXPECT_EQ(mv.Lane(17), Value(3));  // Broadcast semantics.
}

TEST(MultiValueTest, ExpandedCollapsesWhenUniform) {
  MultiValue mv = MultiValue::Expanded({Value(5), Value(5), Value(5)});
  EXPECT_TRUE(mv.collapsed());
  EXPECT_EQ(mv.CollapsedValue(), Value(5));
}

TEST(MultiValueTest, ExpandedStaysExpandedWhenDivergent) {
  MultiValue mv = MultiValue::Expanded({Value(1), Value(2)});
  EXPECT_FALSE(mv.collapsed());
  EXPECT_EQ(mv.Lane(0), Value(1));
  EXPECT_EQ(mv.Lane(1), Value(2));
}

TEST(MultiValueTest, MapPreservesWidthAndRecollapses) {
  MultiValue mv = MultiValue::Expanded({Value(1), Value(2)});
  // Mapping to a constant collapses again — the SIMD-on-demand property.
  MultiValue constant = MultiValue::Map(mv, [](const Value&) { return Value("c"); });
  EXPECT_TRUE(constant.collapsed());
  MultiValue doubled =
      MultiValue::Map(mv, [](const Value& v) { return Value(v.AsInt() * 2); });
  EXPECT_FALSE(doubled.collapsed());
  EXPECT_EQ(doubled.Lane(1), Value(4));
}

TEST(MultiValueTest, ZipBroadcastsCollapsedSide) {
  MultiValue wide = MultiValue::Expanded({Value(1), Value(2), Value(3)});
  MultiValue sum = MvAdd(wide, MultiValue(10));
  EXPECT_EQ(sum.Lane(0), Value(11));
  EXPECT_EQ(sum.Lane(2), Value(13));
}

TEST(MultiValueTest, EqHelpers) {
  MultiValue a = MultiValue::Expanded({Value("x"), Value("y")});
  MultiValue eq = MvEq(a, MultiValue("x"));
  EXPECT_EQ(eq.Lane(0), Value(true));
  EXPECT_EQ(eq.Lane(1), Value(false));
}

TEST(AppUtilTest, MapHelpers) {
  MultiValue map(MakeMap({{"a", 1}}));
  MultiValue set = MvMapSet(map, MultiValue("b"), MultiValue(2));
  EXPECT_EQ(MvMapGet(set, MultiValue("b")).CollapsedValue(), Value(2));
  EXPECT_EQ(MvMapHas(set, MultiValue("a")).CollapsedValue(), Value(true));
  EXPECT_EQ(MvMapSize(set).CollapsedValue(), Value(2));
  MultiValue erased = MvMapErase(set, MultiValue("a"));
  EXPECT_EQ(MvMapHas(erased, MultiValue("a")).CollapsedValue(), Value(false));
}

TEST(AppUtilTest, ListHelpers) {
  MultiValue list(Value(ValueList{}));
  list = MvListAppend(list, MultiValue(7));
  list = MvListAppend(list, MultiValue("x"));
  EXPECT_EQ(MvListLen(list).CollapsedValue(), Value(2));
  EXPECT_EQ(MvListGet(list, 1).CollapsedValue(), Value("x"));
  EXPECT_TRUE(MvListGet(list, 5).CollapsedValue().is_null());
}

TEST(AppUtilTest, PerLaneMapUpdate) {
  // Lane-divergent keys update different slots per lane.
  MultiValue maps(Value(ValueMap{}));
  MultiValue keys = MultiValue::Expanded({Value("k1"), Value("k2")});
  MultiValue updated = MvMapSet(maps, keys, MultiValue(1));
  EXPECT_FALSE(updated.collapsed());
  EXPECT_TRUE(updated.Lane(0).HasField("k1"));
  EXPECT_FALSE(updated.Lane(0).HasField("k2"));
  EXPECT_TRUE(updated.Lane(1).HasField("k2"));
}

TEST(AppUtilTest, ContentDigestIsStablePerLane) {
  MultiValue a = MvContentDigest(MultiValue("same"));
  MultiValue b = MvContentDigest(MultiValue("same"));
  EXPECT_EQ(a, b);
  MultiValue c = MvContentDigest(MultiValue("different"));
  EXPECT_NE(a, c);
}

TEST(AppUtilTest, PrefixAndLogicHelpers) {
  MultiValue wide = MultiValue::Expanded({Value("a"), Value("b")});
  MultiValue prefixed = MvPrefix("dump:", wide);
  EXPECT_EQ(prefixed.Lane(0), Value("dump:a"));
  EXPECT_EQ(MvNot(MultiValue(false)).CollapsedValue(), Value(true));
  EXPECT_EQ(MvAnd(MultiValue(true), MultiValue(0)).CollapsedValue(), Value(false));
  EXPECT_EQ(MvLtScalar(2, MultiValue(3)).CollapsedValue(), Value(true));
  EXPECT_EQ(MvLtScalar(3, MultiValue(3)).CollapsedValue(), Value(false));
}

}  // namespace
}  // namespace karousos
