// Wire-format pinning for the record path: the streaming AdviceBuilder (and
// the move-based epoch slicer) must produce byte-identical advice, trace, and
// segment streams to the committed pre-rewrite fixtures
// (tests/fixtures/record_golden/, regenerated only intentionally via
// tools/make_record_golden).
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/app.h"
#include "src/server/rollover.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

std::vector<uint8_t> ReadFixture(const std::string& name) {
  const std::string path = std::string(KAROUSOS_FIXTURE_DIR) + "/record_golden/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

struct FixtureSpec {
  const char* name;
  const char* app;
  WorkloadKind kind;
  size_t requests;
  int concurrency;
  uint64_t epoch_requests;
};

// Must match tools/make_record_golden.cc exactly.
constexpr FixtureSpec kFixtures[] = {
    {"stacks120", "stacks", WorkloadKind::kMixed, 120, 10, 7},
    {"motd60", "motd", WorkloadKind::kWriteHeavy, 60, 6, 13},
    // Hot-key contention: aborted transactions, retries, and cross-epoch
    // transaction windows in the advice bytes.
    {"auction90", "auction", WorkloadKind::kAuctionMix, 90, 12, 9},
};

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  if (name == "auction") {
    return MakeAuctionApp();
  }
  return MakeWikiApp();
}

ServerRunResult RunFixtureWorkload(const FixtureSpec& spec) {
  WorkloadConfig wl;
  wl.app = spec.app;
  wl.kind = spec.kind;
  wl.requests = spec.requests;
  wl.seed = 7;
  wl.connections = spec.concurrency;
  std::vector<Value> inputs = GenerateWorkload(wl);

  AppSpec app = MakeApp(spec.app);
  ServerConfig config;
  config.concurrency = spec.concurrency;
  config.seed = 7;
  config.epoch_requests = spec.epoch_requests;
  Server server(*app.program, config);
  return server.Run(inputs);
}

class AdviceGoldenTest : public ::testing::TestWithParam<FixtureSpec> {};

TEST_P(AdviceGoldenTest, LiveRunMatchesGoldenBytes) {
  const FixtureSpec& spec = GetParam();
  ServerRunResult run = RunFixtureWorkload(spec);

  ByteWriter advice_bytes;
  run.advice.Serialize(&advice_bytes);
  EXPECT_EQ(advice_bytes.bytes(), ReadFixture(std::string(spec.name) + ".advice"))
      << "advice wire bytes drifted from the pre-builder record path";

  ByteWriter trace_bytes;
  run.trace.Serialize(&trace_bytes);
  EXPECT_EQ(trace_bytes.bytes(), ReadFixture(std::string(spec.name) + ".trace"));

  EXPECT_EQ(run.advice_segments, ReadFixture(std::string(spec.name) + ".advice_segments"))
      << "epoch advice segments drifted (SliceRunOwned vs golden)";
  EXPECT_EQ(run.trace_segments, ReadFixture(std::string(spec.name) + ".trace_segments"));
}

TEST_P(AdviceGoldenTest, GoldenAdviceRoundTripsThroughDeserialize) {
  const FixtureSpec& spec = GetParam();
  std::vector<uint8_t> bytes = ReadFixture(std::string(spec.name) + ".advice");
  ByteReader reader(bytes);
  auto advice = Advice::Deserialize(&reader);
  ASSERT_TRUE(advice.has_value());
  EXPECT_TRUE(reader.AtEnd());

  ByteWriter rewritten;
  advice->Serialize(&rewritten);
  EXPECT_EQ(rewritten.bytes(), bytes);
}

TEST_P(AdviceGoldenTest, MeasureSizeMatchesSerializedLength) {
  const FixtureSpec& spec = GetParam();
  ServerRunResult run = RunFixtureWorkload(spec);

  Advice::SizeBreakdown b = run.advice.MeasureSize();
  ByteWriter encoded;
  run.advice.Serialize(&encoded);
  EXPECT_EQ(b.total, encoded.size());
  EXPECT_EQ(b.total, b.tags + b.handler_logs + b.var_logs + b.tx_logs + b.write_order + b.other);
  EXPECT_GT(b.var_logs, 0u);
  EXPECT_GT(b.tx_logs, 0u);
}

// The verifier-side copying slicer and the collector's owned slicer must
// stay byte-interchangeable: segments encoded from SliceRun(trace, advice)
// equal the server-emitted streams, and MergeSlices restores the monolithic
// advice exactly.
TEST_P(AdviceGoldenTest, CopyingSlicerAndMergeMatchServerStreams) {
  const FixtureSpec& spec = GetParam();
  ServerRunResult run = RunFixtureWorkload(spec);

  EpochSlices slices = SliceRun(run.trace, run.advice, spec.epoch_requests);
  EXPECT_EQ(EncodeTraceSegments(slices), run.trace_segments);
  EXPECT_EQ(EncodeAdviceSegments(slices), run.advice_segments);

  Advice merged = MergeSlices(std::move(slices));
  ByteWriter merged_bytes;
  merged.Serialize(&merged_bytes);
  ByteWriter original_bytes;
  run.advice.Serialize(&original_bytes);
  EXPECT_EQ(merged_bytes.bytes(), original_bytes.bytes());
}

INSTANTIATE_TEST_SUITE_P(RecordGolden, AdviceGoldenTest, ::testing::ValuesIn(kFixtures),
                         [](const ::testing::TestParamInfo<FixtureSpec>& param) {
                           return std::string(param.param.name);
                         });

}  // namespace
}  // namespace karousos
