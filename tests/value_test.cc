#include "src/common/value.h"

#include <gtest/gtest.h>

namespace karousos {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(MakeList({1, 2}).is_list());
  EXPECT_TRUE(MakeMap({{"a", 1}}).is_map());
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_FALSE(Value(0).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_FALSE(Value(ValueList{}).Truthy());
  EXPECT_FALSE(Value(ValueMap{}).Truthy());
  EXPECT_TRUE(Value(true).Truthy());
  EXPECT_TRUE(Value(-1).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
  EXPECT_TRUE(MakeList({Value()}).Truthy());
}

TEST(ValueTest, FieldAccess) {
  Value m = MakeMap({{"a", 1}, {"b", "two"}});
  EXPECT_EQ(m.Field("a"), Value(1));
  EXPECT_EQ(m.Field("b"), Value("two"));
  EXPECT_TRUE(m.Field("missing").is_null());
  EXPECT_TRUE(Value(3).Field("a").is_null());
  EXPECT_TRUE(m.HasField("a"));
  EXPECT_FALSE(m.HasField("c"));
}

TEST(ValueTest, EqualityIsStructural) {
  EXPECT_EQ(MakeMap({{"a", MakeList({1, "x"})}}), MakeMap({{"a", MakeList({1, "x"})}}));
  EXPECT_NE(MakeMap({{"a", 1}}), MakeMap({{"a", 2}}));
  EXPECT_NE(Value(1), Value(1.0));  // Int and double are distinct kinds.
  EXPECT_NE(Value(0), Value(false));
}

TEST(ValueTest, DigestDistinguishesStructure) {
  EXPECT_NE(Value("ab").DigestValue(), MakeList({"a", "b"}).DigestValue());
  EXPECT_NE(MakeList({1, 2}).DigestValue(), MakeList({2, 1}).DigestValue());
  EXPECT_EQ(MakeMap({{"a", 1}, {"b", 2}}).DigestValue(),
            MakeMap({{"b", 2}, {"a", 1}}).DigestValue());  // Map order canonical.
  EXPECT_NE(Value().DigestValue(), Value(0).DigestValue());
}

TEST(ValueTest, ToStringRendersJson) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(MakeList({1, "a"}).ToString(), "[1,\"a\"]");
  EXPECT_EQ(MakeMap({{"k", MakeList({})}}).ToString(), "{\"k\":[]}");
  EXPECT_EQ(Value("quote\"back\\slash").ToString(), "\"quote\\\"back\\\\slash\"");
}

TEST(ValueTest, OrderingIsTotalAndConsistent) {
  std::vector<Value> values = {Value(), Value(false), Value(true), Value(-5),
                               Value(3), Value("a"),  Value("b"),  MakeList({1})};
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_FALSE(values[i] < values[i]);
    for (size_t j = i + 1; j < values.size(); ++j) {
      EXPECT_TRUE(values[i] < values[j]);
      EXPECT_FALSE(values[j] < values[i]);
    }
  }
}

}  // namespace
}  // namespace karousos
