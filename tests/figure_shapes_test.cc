// Shape regressions: the qualitative claims of Figures 6-8 (see
// EXPERIMENTS.md), asserted at small scale so CI catches any change that
// would break the reproduction. These check relationships, never absolute
// times.
#include <gtest/gtest.h>

#include "src/audit/audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct ModeRun {
  ServerRunResult server;
  AuditResult audit;
};

ModeRun RunMode(const std::string& app_name, WorkloadKind kind, CollectMode mode,
                int concurrency, size_t requests = 200) {
  AppSpec app = app_name == "motd"     ? MakeMotdApp()
                : app_name == "stacks" ? MakeStacksApp()
                                       : MakeWikiApp();
  WorkloadConfig wl;
  wl.app = app_name;
  wl.kind = kind;
  wl.requests = requests;
  wl.connections = concurrency;
  ServerConfig config;
  config.mode = mode;
  config.concurrency = concurrency;
  config.seed = 21;
  Server server(*app.program, config);
  ModeRun run;
  run.server = server.Run(GenerateWorkload(wl));
  run.audit = AuditOnly(app, run.server.trace, run.server.advice, config.isolation);
  return run;
}

TEST(FigureShapesTest, MotdAdviceIdenticalAcrossSystems) {
  // Figure 8, MOTD: every access is R-concurrent, so Karousos's advice is
  // byte-for-byte as large as Orochi-JS's.
  ModeRun k = RunMode("motd", WorkloadKind::kWriteHeavy, CollectMode::kKarousos, 8);
  ModeRun o = RunMode("motd", WorkloadKind::kWriteHeavy, CollectMode::kOrochi, 8);
  ASSERT_TRUE(k.audit.accepted) << k.audit.reason;
  ASSERT_TRUE(o.audit.accepted) << o.audit.reason;
  EXPECT_EQ(k.server.advice.var_log_entry_count(), o.server.advice.var_log_entry_count());
  EXPECT_EQ(k.server.advice.MeasureSize().total, o.server.advice.MeasureSize().total);
  EXPECT_EQ(k.audit.stats.groups, o.audit.stats.groups);
}

TEST(FigureShapesTest, StacksKarousosGroupsCoarserUnderConcurrency) {
  // Figure 7, stacks: concurrency scrambles sibling completion order, so
  // sequence tags fragment while tree tags survive. Needs enough requests
  // that list fan-outs carry several children (known dumps accumulate).
  ModeRun k = RunMode("stacks", WorkloadKind::kReadHeavy, CollectMode::kKarousos, 12, 500);
  ModeRun o = RunMode("stacks", WorkloadKind::kReadHeavy, CollectMode::kOrochi, 12, 500);
  ASSERT_TRUE(k.audit.accepted) << k.audit.reason;
  ASSERT_TRUE(o.audit.accepted) << o.audit.reason;
  EXPECT_LT(k.audit.stats.groups, o.audit.stats.groups);
  EXPECT_LT(k.audit.stats.handler_executions, o.audit.stats.handler_executions);
}

TEST(FigureShapesTest, WikiKarousosAdviceSmallerAndGrowsWithConcurrency) {
  // Figure 8, wiki: R-ordered logging saves bytes, and advice grows with the
  // number of concurrent connections (the pool-stats object).
  ModeRun k1 = RunMode("wiki", WorkloadKind::kWikiMix, CollectMode::kKarousos, 1);
  ModeRun k16 = RunMode("wiki", WorkloadKind::kWikiMix, CollectMode::kKarousos, 16);
  ModeRun o16 = RunMode("wiki", WorkloadKind::kWikiMix, CollectMode::kOrochi, 16);
  ASSERT_TRUE(k1.audit.accepted) << k1.audit.reason;
  ASSERT_TRUE(k16.audit.accepted) << k16.audit.reason;
  ASSERT_TRUE(o16.audit.accepted) << o16.audit.reason;
  EXPECT_LT(k16.server.advice.MeasureSize().total, o16.server.advice.MeasureSize().total);
  EXPECT_LT(k1.server.advice.MeasureSize().total, k16.server.advice.MeasureSize().total);
  EXPECT_LT(k16.server.advice.var_log_entry_count(),
            o16.server.advice.var_log_entry_count());
}

TEST(FigureShapesTest, InstrumentationCostsServingTimeNotBehaviour) {
  // Figure 6's premise: the instrumented server does strictly more work.
  // Compare deterministic work proxies rather than wall clock (CI-safe).
  ModeRun off = RunMode("stacks", WorkloadKind::kMixed, CollectMode::kOff, 8);
  ModeRun on = RunMode("stacks", WorkloadKind::kMixed, CollectMode::kKarousos, 8);
  // Identical schedules -> identical activations and responses.
  EXPECT_EQ(off.server.handler_activations, on.server.handler_activations);
  ASSERT_EQ(off.server.trace.events.size(), on.server.trace.events.size());
  for (size_t i = 0; i < off.server.trace.events.size(); ++i) {
    EXPECT_EQ(off.server.trace.events[i].payload, on.server.trace.events[i].payload);
  }
  // Only the instrumented run pays for advice.
  EXPECT_EQ(off.server.advice_spool_bytes, 0u);
  EXPECT_GT(on.server.advice_spool_bytes, 0u);
  EXPECT_GT(on.server.var_log_entries, 0u);
  EXPECT_EQ(off.server.var_log_entries, 0u);
}

TEST(FigureShapesTest, BatchingDedupScalesWithIdenticalRequests) {
  // The core of Figure 7's wins: verifier work per request falls as groups
  // widen. 200 identical requests -> one group -> one handler execution per
  // handler in the tree.
  AppSpec app = MakeMotdApp();
  std::vector<Value> inputs(200, MakeMap({{"op", "get"}, {"day", "fri"}}));
  ServerConfig config;
  config.concurrency = 8;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.audit.stats.groups, 1u);
  EXPECT_EQ(result.audit.stats.handler_executions, 1u);
  EXPECT_EQ(result.audit.stats.handler_lanes, 200u);
}

}  // namespace
}  // namespace karousos
