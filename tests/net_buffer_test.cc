// Watermark buffer semantics: the hysteresis pair fires exactly once per
// crossing, overflow state tracks the documented thresholds (above when
// size > high, back below when size <= low), and a zero high watermark
// disables limiting entirely.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/net/buffer.h"

namespace karousos {
namespace {

std::vector<uint8_t> Bytes(size_t n) { return std::vector<uint8_t>(n, 0xAB); }

TEST(WatermarkBufferTest, AppendDrainRoundTrip) {
  WatermarkBuffer buf;
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  buf.Append(data.data(), data.size());
  ASSERT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.data()[0], 1);
  buf.Drain(2);
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.data()[0], 3);
  buf.Drain(3);
  EXPECT_TRUE(buf.empty());
}

TEST(WatermarkBufferTest, HighFiresExactlyOncePerCrossing) {
  WatermarkBuffer buf;
  int above = 0;
  int below = 0;
  buf.SetWatermarks(100, 50);
  buf.SetCallbacks([&] { ++above; }, [&] { ++below; });

  auto chunk = Bytes(30);
  buf.Append(chunk.data(), chunk.size());  // 30
  buf.Append(chunk.data(), chunk.size());  // 60
  buf.Append(chunk.data(), chunk.size());  // 90
  EXPECT_EQ(above, 0);
  EXPECT_FALSE(buf.overflowed());

  auto ten = Bytes(10);
  buf.Append(ten.data(), ten.size());  // 100: not yet (> high required).
  EXPECT_EQ(above, 0);
  buf.Append(ten.data(), ten.size());  // 110: crossed.
  EXPECT_EQ(above, 1);
  EXPECT_TRUE(buf.overflowed());

  // Further growth above high must not re-fire.
  buf.Append(chunk.data(), chunk.size());  // 140
  EXPECT_EQ(above, 1);

  // Draining to (low, high] keeps the overflowed state: no flapping.
  buf.Drain(60);  // 80
  EXPECT_EQ(below, 0);
  EXPECT_TRUE(buf.overflowed());

  buf.Drain(30);  // 50 == low: below-low fires.
  EXPECT_EQ(below, 1);
  EXPECT_FALSE(buf.overflowed());

  // Draining further must not re-fire.
  buf.Drain(50);
  EXPECT_EQ(below, 1);

  // A second full cycle fires each callback exactly once more.
  auto big = Bytes(200);
  buf.Append(big.data(), big.size());
  EXPECT_EQ(above, 2);
  buf.Drain(200);
  EXPECT_EQ(below, 2);
}

TEST(WatermarkBufferTest, OscillationAroundHighDoesNotFlap) {
  WatermarkBuffer buf;
  int above = 0;
  int below = 0;
  buf.SetWatermarks(100, 50);
  buf.SetCallbacks([&] { ++above; }, [&] { ++below; });

  auto chunk = Bytes(101);
  buf.Append(chunk.data(), chunk.size());  // 101: above.
  // Oscillate between 81 and 101 — inside the hysteresis band.
  for (int i = 0; i < 10; ++i) {
    buf.Drain(20);
    auto refill = Bytes(20);
    buf.Append(refill.data(), refill.size());
  }
  EXPECT_EQ(above, 1);
  EXPECT_EQ(below, 0);
}

TEST(WatermarkBufferTest, ZeroHighDisablesLimiting) {
  WatermarkBuffer buf;
  int above = 0;
  buf.SetWatermarks(0, 0);
  buf.SetCallbacks([&] { ++above; }, [] {});
  auto big = Bytes(1 << 20);
  buf.Append(big.data(), big.size());
  EXPECT_EQ(above, 0);
  EXPECT_FALSE(buf.overflowed());
}

TEST(WatermarkBufferTest, PeakTracksLargestResidentSize) {
  WatermarkBuffer buf;
  auto chunk = Bytes(70);
  buf.Append(chunk.data(), chunk.size());
  buf.Drain(50);
  auto more = Bytes(10);
  buf.Append(more.data(), more.size());  // Resident 30; peak stays 70.
  EXPECT_EQ(buf.peak_size(), 70u);
  auto big = Bytes(200);
  buf.Append(big.data(), big.size());
  EXPECT_EQ(buf.peak_size(), 230u);
}

TEST(WatermarkBufferTest, CompactionPreservesContents) {
  WatermarkBuffer buf;
  // Interleave appends and full drains so the head pointer repeatedly
  // reaches the end and compaction triggers; contents must stay coherent.
  for (int round = 0; round < 100; ++round) {
    std::vector<uint8_t> data(64);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(round + i);
    }
    buf.Append(data.data(), data.size());
    buf.Drain(32);
    ASSERT_EQ(buf.size(), 32u);
    EXPECT_EQ(buf.data()[0], static_cast<uint8_t>(round + 32));
    buf.Drain(32);
    EXPECT_TRUE(buf.empty());
  }
}

}  // namespace
}  // namespace karousos
