#include "src/common/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace karousos {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(16, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 16, 0u);
  // Writing each region must not disturb the others.
  std::memset(a, 0xaa, 3);
  std::memset(b, 0xbb, 8);
  std::memset(c, 0xcc, 16);
  EXPECT_EQ(*static_cast<uint8_t*>(a), 0xaa);
  EXPECT_EQ(*static_cast<uint8_t*>(b), 0xbb);
  EXPECT_EQ(*static_cast<uint8_t*>(c), 0xcc);
}

TEST(ArenaTest, ArrayAllocationIsUsable) {
  Arena arena;
  uint64_t* xs = arena.AllocateArray<uint64_t>(1000);
  for (size_t i = 0; i < 1000; ++i) {
    xs[i] = i * i;
  }
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(xs[i], i * i);
  }
  EXPECT_GE(arena.bytes_allocated(), 1000 * sizeof(uint64_t));
}

TEST(ArenaTest, LargeBlocksGetDedicatedStorage) {
  Arena arena(/*block_bytes=*/128);
  // Far larger than the block size: must still succeed, in one contiguous run.
  uint8_t* big = arena.AllocateArray<uint8_t>(1 << 20);
  ASSERT_NE(big, nullptr);
  big[0] = 1;
  big[(1 << 20) - 1] = 2;
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(big[(1 << 20) - 1], 2);
  // Small allocations keep working after an oversized one.
  uint32_t* small = arena.AllocateArray<uint32_t>(4);
  small[3] = 7;
  EXPECT_EQ(small[3], 7u);
}

TEST(ArenaTest, ResetReusesBlocksWithoutShrinkingReserve) {
  Arena arena(/*block_bytes=*/256);
  for (int i = 0; i < 16; ++i) {
    arena.Allocate(200, 8);
  }
  size_t reserved_before = arena.bytes_reserved();
  size_t allocated_before = arena.bytes_allocated();
  arena.Reset();
  // Reset rewinds but retains the blocks for reuse...
  EXPECT_EQ(arena.bytes_reserved(), reserved_before);
  for (int i = 0; i < 16; ++i) {
    arena.Allocate(200, 8);
  }
  // ...so a same-shaped second round allocates no new storage.
  EXPECT_EQ(arena.bytes_reserved(), reserved_before);
  // bytes_allocated is a cumulative counter across Resets (profiler input).
  EXPECT_GT(arena.bytes_allocated(), allocated_before);
}

TEST(ArenaTest, ManyMixedAllocationsStayWritable) {
  Arena arena(/*block_bytes=*/512);
  std::vector<std::pair<uint32_t*, uint32_t>> arrays;
  for (uint32_t n = 1; n < 200; ++n) {
    uint32_t* xs = arena.AllocateArray<uint32_t>(n);
    for (uint32_t i = 0; i < n; ++i) {
      xs[i] = n;
    }
    arrays.emplace_back(xs, n);
  }
  for (const auto& [xs, n] : arrays) {
    for (uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(xs[i], n);
    }
  }
}

}  // namespace
}  // namespace karousos
