// The auction app: hot-key contention under audit. Three properties:
//
//  1. Completeness — honest auction runs are ACCEPTED across isolation
//     levels, collection modes, and workload kinds, even at contention
//     levels where most bids target one item.
//  2. Contention actually happens — under serializable isolation with many
//     concurrent bidders on Zipf-hot items, the store reports lock conflicts
//     and the app's retry responses appear in the trace. A sequential run of
//     the same workload has neither.
//  3. Isolation divergence — a trace recorded under read-committed or
//     read-uncommitted exhibits anomalies (the verify op's non-repeatable
//     double read) that the serializable-level audit REJECTS as a dependency
//     cycle, while the same trace is ACCEPTED at the level it was recorded
//     under, and a serializable trace is accepted everywhere.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

std::vector<Value> AuctionInputs(size_t requests, uint64_t seed, int connections,
                                 double theta = 0.9, int hot_items = 4) {
  WorkloadConfig wl;
  wl.app = "auction";
  wl.kind = WorkloadKind::kAuctionMix;
  wl.requests = requests;
  wl.seed = seed;
  wl.connections = connections;
  wl.zipf_theta = theta;
  wl.hot_items = hot_items;
  return GenerateWorkload(wl);
}

size_t CountRetryResponses(const Trace& trace) {
  size_t n = 0;
  for (const TraceEvent& ev : trace.events) {
    if (ev.kind == TraceEvent::Kind::kResponse && ev.payload.is_map() &&
        ev.payload.Field("retry").Truthy()) {
      ++n;
    }
  }
  return n;
}

// --- 1. Completeness -------------------------------------------------------

TEST(AuctionCompletenessTest, HonestRunsAcceptedAcrossIsolationLevels) {
  for (IsolationLevel iso : {IsolationLevel::kSerializable, IsolationLevel::kReadCommitted,
                             IsolationLevel::kReadUncommitted}) {
    ServerConfig config;
    config.isolation = iso;
    config.concurrency = 12;
    config.seed = 7;
    AuditPipelineResult result =
        RunAndAudit(MakeAuctionApp(), AuctionInputs(160, 7, 12), config);
    // Each level audits against itself: the trace is honest for the level it
    // was recorded under.
    EXPECT_TRUE(result.audit.accepted)
        << "isolation=" << static_cast<int>(iso) << ": " << result.audit.reason;
  }
}

TEST(AuctionCompletenessTest, HonestRunsAcceptedInBothCollectionModes) {
  for (CollectMode mode : {CollectMode::kKarousos, CollectMode::kOrochi}) {
    ServerConfig config;
    config.mode = mode;
    config.concurrency = 10;
    config.seed = 3;
    AuditPipelineResult result =
        RunAndAudit(MakeAuctionApp(), AuctionInputs(120, 3, 10), config);
    EXPECT_TRUE(result.audit.accepted)
        << CollectModeName(mode) << ": " << result.audit.reason;
  }
}

TEST(AuctionCompletenessTest, HonestRunsAcceptedAcrossWorkloadKinds) {
  for (WorkloadKind kind : {WorkloadKind::kAuctionMix, WorkloadKind::kReadHeavy,
                            WorkloadKind::kWriteHeavy}) {
    WorkloadConfig wl;
    wl.app = "auction";
    wl.kind = kind;
    wl.requests = 100;
    wl.seed = 11;
    wl.connections = 8;
    ServerConfig config;
    config.concurrency = 8;
    config.seed = 11;
    AuditPipelineResult result =
        RunAndAudit(MakeAuctionApp(), GenerateWorkload(wl), config);
    EXPECT_TRUE(result.audit.accepted)
        << WorkloadKindName(kind) << ": " << result.audit.reason;
  }
}

TEST(AuctionCompletenessTest, ExtremeSkewSingleHotItemStillAccepted) {
  // theta = 1.2 over 2 items: nearly every bid races on item 0.
  ServerConfig config;
  config.concurrency = 16;
  config.seed = 5;
  AuditPipelineResult result =
      RunAndAudit(MakeAuctionApp(), AuctionInputs(200, 5, 16, 1.2, 2), config);
  EXPECT_TRUE(result.audit.accepted) << result.audit.reason;
  // The point of the skew: contention must be heavy.
  EXPECT_GT(result.server.conflicts, 0u);
}

TEST(AuctionCompletenessTest, MixedAppRunAccepted) {
  WorkloadConfig wl;
  wl.app = "mixed";
  wl.kind = WorkloadKind::kMixedApps;
  wl.requests = 200;
  wl.seed = 3;
  wl.connections = 10;
  ServerConfig config;
  config.concurrency = 10;
  config.seed = 3;
  AuditPipelineResult result = RunAndAudit(MakeMixedApp(), GenerateWorkload(wl), config);
  EXPECT_TRUE(result.audit.accepted) << result.audit.reason;
}

// --- 2. Contention ---------------------------------------------------------

TEST(AuctionContentionTest, ConcurrentBiddersConflictAndRetry) {
  ServerConfig config;
  config.concurrency = 12;
  config.seed = 7;
  std::vector<Value> inputs = AuctionInputs(300, 7, 12);

  AuditPipelineResult contended = RunAndAudit(MakeAuctionApp(), inputs, config);
  ASSERT_TRUE(contended.audit.accepted) << contended.audit.reason;
  EXPECT_GT(contended.server.conflicts, 0u)
      << "12 concurrent bidders on 4 Zipf items should conflict";
  EXPECT_GT(CountRetryResponses(contended.server.trace), 0u)
      << "conflicts should surface as retry responses";

  // The control: one request in flight at a time → no lock windows overlap.
  ServerConfig sequential = config;
  sequential.concurrency = 1;
  AuditPipelineResult serial = RunAndAudit(MakeAuctionApp(), inputs, sequential);
  ASSERT_TRUE(serial.audit.accepted) << serial.audit.reason;
  EXPECT_EQ(serial.server.conflicts, 0u);
  EXPECT_EQ(CountRetryResponses(serial.server.trace), 0u);
}

TEST(AuctionContentionTest, SkewIncreasesConflicts) {
  // Same request count and concurrency; hotter keys → more conflicts. Uses a
  // generous margin (>=) because the schedules differ between runs: the
  // claim is monotone pressure, not an exact count.
  size_t conflicts_uniform = 0;
  size_t conflicts_skewed = 0;
  for (int round = 0; round < 3; ++round) {
    uint64_t seed = 21 + static_cast<uint64_t>(round);
    ServerConfig config;
    config.concurrency = 12;
    config.seed = seed;
    conflicts_uniform +=
        RunAndAudit(MakeAuctionApp(), AuctionInputs(200, seed, 12, 0.0, 8), config)
            .server.conflicts;
    conflicts_skewed +=
        RunAndAudit(MakeAuctionApp(), AuctionInputs(200, seed, 12, 1.2, 8), config)
            .server.conflicts;
  }
  EXPECT_GE(conflicts_skewed, conflicts_uniform)
      << "Zipf(1.2) should contend at least as hard as uniform over 8 items";
  EXPECT_GT(conflicts_skewed, 0u);
}

// --- 3. Isolation divergence ----------------------------------------------

struct LevelRun {
  AppSpec app;
  ServerRunResult server;
};

LevelRun ServeAt(IsolationLevel iso) {
  // The parameters verified to produce an observable anomaly window: the
  // verify op's double read straddles a concurrent bid commit under rc/ru.
  LevelRun run{MakeAuctionApp(), {}};
  ServerConfig config;
  config.isolation = iso;
  config.concurrency = 12;
  config.seed = 7;
  Server server(*run.app.program, config);
  run.server = server.Run(AuctionInputs(300, 7, 12));
  return run;
}

TEST(AuctionIsolationTest, WeakLevelTracesRejectedAtSerializable) {
  for (IsolationLevel weak :
       {IsolationLevel::kReadCommitted, IsolationLevel::kReadUncommitted}) {
    LevelRun run = ServeAt(weak);
    AuditResult own = AuditOnly(run.app, run.server.trace, run.server.advice, weak,
                                &run.server.untracked_accesses);
    EXPECT_TRUE(own.accepted)
        << "level " << static_cast<int>(weak) << " vs itself: " << own.reason;

    AuditResult strict =
        AuditOnly(run.app, run.server.trace, run.server.advice,
                  IsolationLevel::kSerializable, &run.server.untracked_accesses);
    ASSERT_FALSE(strict.accepted)
        << "level " << static_cast<int>(weak)
        << " trace must not certify as serializable";
    EXPECT_NE(strict.reason.find("cycle"), std::string::npos) << strict.reason;
  }
}

TEST(AuctionIsolationTest, SerializableTraceAcceptedEverywhere) {
  LevelRun run = ServeAt(IsolationLevel::kSerializable);
  for (IsolationLevel iso : {IsolationLevel::kSerializable, IsolationLevel::kReadCommitted,
                             IsolationLevel::kReadUncommitted}) {
    AuditResult result = AuditOnly(run.app, run.server.trace, run.server.advice, iso,
                                   &run.server.untracked_accesses);
    EXPECT_TRUE(result.accepted)
        << "serializable trace at level " << static_cast<int>(iso) << ": "
        << result.reason;
  }
}

TEST(AuctionIsolationTest, WeakRunsObserveUnstableVerifies) {
  // The app-level witness of the anomaly: under rc/ru some verify responses
  // report stable=false (the double read saw a concurrent commit); under
  // serializable, never — the shared lock makes the read repeatable.
  auto unstable_count = [](const LevelRun& run) {
    size_t n = 0;
    for (const TraceEvent& ev : run.server.trace.events) {
      if (ev.kind != TraceEvent::Kind::kResponse || !ev.payload.is_map()) {
        continue;
      }
      Value stable = ev.payload.Field("stable");
      if (!stable.is_null() && !stable.Truthy()) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(unstable_count(ServeAt(IsolationLevel::kSerializable)), 0u);
  EXPECT_GT(unstable_count(ServeAt(IsolationLevel::kReadCommitted)), 0u);
}

}  // namespace
}  // namespace karousos
