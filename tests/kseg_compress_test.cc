// Storage-class advice compression, end to end: every stage combination must
// decode back to byte-identical advice (decode(encode(x)) == x at the Advice
// level), the audit verdict must be bit-identical between compressed and raw
// streams across the full epoch/threads/prescreen matrix, and corrupted
// compressed containers must reject cleanly — mirroring
// tests/segment_corruption_test.cc for the v2 flagged format.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/apps/app.h"
#include "src/audit/stream.h"
#include "src/common/kcodec.h"
#include "src/common/segment.h"
#include "src/server/kseg_codec.h"
#include "src/server/rollover.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct FixtureSpec {
  const char* name;
  const char* app;
  WorkloadKind kind;
  size_t requests;
  int concurrency;
  uint64_t epoch_requests;
};

// The same three workloads the record-golden fixtures pin: coverage of all
// advice components, hot-key contention, and cross-epoch references.
constexpr FixtureSpec kFixtures[] = {
    {"stacks120", "stacks", WorkloadKind::kMixed, 120, 10, 7},
    {"motd60", "motd", WorkloadKind::kWriteHeavy, 60, 6, 13},
    {"auction90", "auction", WorkloadKind::kAuctionMix, 90, 12, 9},
};

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  if (name == "auction") {
    return MakeAuctionApp();
  }
  return MakeWikiApp();
}

ServerRunResult RunFixtureWorkload(const FixtureSpec& spec) {
  WorkloadConfig wl;
  wl.app = spec.app;
  wl.kind = spec.kind;
  wl.requests = spec.requests;
  wl.seed = 7;
  wl.connections = spec.concurrency;
  std::vector<Value> inputs = GenerateWorkload(wl);

  AppSpec app = MakeApp(spec.app);
  ServerConfig config;
  config.concurrency = spec.concurrency;
  config.seed = 7;
  config.epoch_requests = spec.epoch_requests;
  Server server(*app.program, config);
  return server.Run(inputs);
}

std::vector<SegmentRecord> WalkFrames(const std::vector<uint8_t>& bytes) {
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  EXPECT_NE(reader, nullptr) << error;
  std::vector<SegmentRecord> frames;
  if (!reader) {
    return frames;
  }
  SegmentRecord rec;
  while (reader->Next(&rec)) {
    frames.push_back(rec);
  }
  EXPECT_TRUE(reader->ok()) << reader->error();
  return frames;
}

class KsegCompressTest : public ::testing::TestWithParam<FixtureSpec> {};

// decode(encode(x)) == x, at the byte level of the raw encoding: every stage
// combination's frames decode to structures whose raw serialization equals
// the raw frame's payload exactly.
TEST_P(KsegCompressTest, AllStageCombinationsRoundTripByteIdentically) {
  const FixtureSpec& spec = GetParam();
  ServerRunResult run = RunFixtureWorkload(spec);
  EpochSlices slices = SliceRun(run.trace, run.advice, spec.epoch_requests);

  const std::vector<SegmentRecord> raw_trace = WalkFrames(EncodeTraceSegments(slices));
  const std::vector<SegmentRecord> raw_advice = WalkFrames(EncodeAdviceSegments(slices));

  for (uint8_t flags = 0; flags <= kFrameFlagsKnownMask; ++flags) {
    const KsegCompression c = KsegCompression::FromFlags(flags);
    SCOPED_TRACE("stages=0x" + std::to_string(flags));

    std::vector<uint8_t> trace_bytes = EncodeTraceSegments(slices, c);
    std::vector<uint8_t> advice_bytes = EncodeAdviceSegments(slices, c);
    std::vector<SegmentRecord> trace_frames = WalkFrames(trace_bytes);
    std::vector<SegmentRecord> advice_frames = WalkFrames(advice_bytes);
    ASSERT_EQ(trace_frames.size(), raw_trace.size());
    ASSERT_EQ(advice_frames.size(), raw_advice.size());

    for (size_t i = 0; i < trace_frames.size(); ++i) {
      const SegmentRecord& rec = trace_frames[i];
      EXPECT_EQ(rec.epoch, raw_trace[i].epoch);
      // A frame never carries flags that were not requested; the block flag
      // may drop per-frame when blocking did not shrink the payload.
      EXPECT_EQ(rec.flags & ~c.Flags(), 0);
      auto window = DecodeTraceSegmentPayload(rec.payload, rec.flags);
      ASSERT_TRUE(window.has_value()) << "trace epoch " << rec.epoch;
      ByteWriter reserialized;
      SerializeTraceEvents(*window, &reserialized);
      EXPECT_EQ(reserialized.bytes(), raw_trace[i].payload) << "trace epoch " << rec.epoch;
    }
    for (size_t i = 0; i < advice_frames.size(); ++i) {
      const SegmentRecord& rec = advice_frames[i];
      EXPECT_EQ(rec.epoch, raw_advice[i].epoch);
      EXPECT_EQ(rec.flags & ~c.Flags(), 0);
      auto decoded = DecodeAdviceSegmentPayload(rec.payload, rec.flags);
      ASSERT_TRUE(decoded.has_value()) << "advice epoch " << rec.epoch;
      ByteWriter reserialized;
      decoded->advice.Serialize(&reserialized);
      decoded->imports.Serialize(&reserialized);
      EXPECT_EQ(reserialized.bytes(), raw_advice[i].payload) << "advice epoch " << rec.epoch;
    }
  }
}

// The no-stage config must forward to the raw (v1) encoder bit for bit, and
// the full stack must actually shrink the advice stream.
TEST_P(KsegCompressTest, RawConfigIsByteIdenticalAndFullStackShrinks) {
  const FixtureSpec& spec = GetParam();
  ServerRunResult run = RunFixtureWorkload(spec);
  EpochSlices slices = SliceRun(run.trace, run.advice, spec.epoch_requests);

  EXPECT_EQ(EncodeAdviceSegments(slices, KsegCompression{}), EncodeAdviceSegments(slices));
  EXPECT_EQ(EncodeTraceSegments(slices, KsegCompression{}), EncodeTraceSegments(slices));

  const size_t raw = EncodeAdviceSegments(slices).size();
  const size_t lanes_dict =
      EncodeAdviceSegments(slices, KsegCompression{true, true, false}).size();
  const size_t full = EncodeAdviceSegments(slices, KsegCompression::All()).size();
  EXPECT_LT(lanes_dict, raw) << "lanes+dict must shrink the advice stream";
  EXPECT_LE(full, lanes_dict) << "the block stage never grows a stream (flag drops instead)";
  EXPECT_LT(full, raw / 2) << "full stack should at least halve advice bytes";
}

// The server-side emission path (ServerConfig::segment_compression) must
// produce exactly what the verifier-side slicer + compressed encoder produce.
TEST_P(KsegCompressTest, ServerEmissionMatchesSlicerEncoding) {
  const FixtureSpec& spec = GetParam();
  WorkloadConfig wl;
  wl.app = spec.app;
  wl.kind = spec.kind;
  wl.requests = spec.requests;
  wl.seed = 7;
  wl.connections = spec.concurrency;
  std::vector<Value> inputs = GenerateWorkload(wl);

  AppSpec app = MakeApp(spec.app);
  ServerConfig config;
  config.concurrency = spec.concurrency;
  config.seed = 7;
  config.epoch_requests = spec.epoch_requests;
  config.segment_compression = KsegCompression::All();
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);

  EpochSlices slices = SliceRun(run.trace, run.advice, spec.epoch_requests);
  EXPECT_EQ(run.trace_segments, EncodeTraceSegments(slices, KsegCompression::All()));
  EXPECT_EQ(run.advice_segments, EncodeAdviceSegments(slices, KsegCompression::All()));
}

INSTANTIATE_TEST_SUITE_P(Fixtures, KsegCompressTest, ::testing::ValuesIn(kFixtures),
                         [](const ::testing::TestParamInfo<FixtureSpec>& param) {
                           return std::string(param.param.name);
                         });

// Audit verdicts must be bit-identical between raw and compressed streams
// across epoch sizes x threads x prescreen — the compression layer is
// invisible to the audit's semantics.
TEST(KsegCompressDifferentialTest, VerdictsMatchRawAcrossMatrix) {
  struct AppRun {
    const char* app;
    WorkloadKind kind;
    size_t requests;
    int concurrency;
  };
  const AppRun runs[] = {
      {"stacks", WorkloadKind::kMixed, 60, 6},
      {"auction", WorkloadKind::kAuctionMix, 72, 12},
  };
  const uint64_t epoch_sizes[] = {1, 50, 0};  // 0 = one epoch holding everything.
  const unsigned thread_counts[] = {1, 4};

  for (const AppRun& r : runs) {
    WorkloadConfig wl;
    wl.app = r.app;
    wl.kind = r.kind;
    wl.requests = r.requests;
    wl.seed = 7;
    wl.connections = r.concurrency;
    std::vector<Value> inputs = GenerateWorkload(wl);
    AppSpec app = MakeApp(r.app);
    ServerConfig config;
    config.concurrency = r.concurrency;
    config.seed = 7;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(inputs);

    for (uint64_t epoch_requests : epoch_sizes) {
      EpochSlices slices = SliceRun(run.trace, run.advice, epoch_requests);
      const std::vector<uint8_t> raw_trace = EncodeTraceSegments(slices);
      const std::vector<uint8_t> raw_advice = EncodeAdviceSegments(slices);
      const std::vector<uint8_t> comp_trace =
          EncodeTraceSegments(slices, KsegCompression::All());
      const std::vector<uint8_t> comp_advice =
          EncodeAdviceSegments(slices, KsegCompression::All());

      // Static model check: same outcome on both encodings.
      CheckResult raw_check = CheckSegmentStreams(raw_trace, raw_advice, epoch_requests);
      CheckResult comp_check = CheckSegmentStreams(comp_trace, comp_advice, epoch_requests);
      EXPECT_EQ(raw_check.ok, comp_check.ok);
      EXPECT_EQ(raw_check.reason, comp_check.reason);
      EXPECT_EQ(raw_check.rule, comp_check.rule);
      EXPECT_EQ(raw_check.epochs, comp_check.epochs);

      for (unsigned threads : thread_counts) {
        for (bool prescreen : {true, false}) {
          SCOPED_TRACE(std::string(r.app) + " epoch=" + std::to_string(epoch_requests) +
                       " threads=" + std::to_string(threads) +
                       " prescreen=" + std::to_string(prescreen));
          VerifierConfig vc;
          vc.threads = threads;
          vc.prescreen = prescreen;
          StreamAuditResult raw_audit =
              AuditSegments(app, raw_trace, raw_advice, vc, epoch_requests);
          StreamAuditResult comp_audit =
              AuditSegments(app, comp_trace, comp_advice, vc, epoch_requests);
          EXPECT_TRUE(raw_audit.audit.accepted) << raw_audit.audit.reason;
          EXPECT_EQ(raw_audit.audit.accepted, comp_audit.audit.accepted);
          EXPECT_EQ(raw_audit.audit.reason, comp_audit.audit.reason);
          EXPECT_EQ(raw_audit.audit.rule, comp_audit.audit.rule);
          EXPECT_EQ(raw_audit.audit.diagnostics.size(), comp_audit.audit.diagnostics.size());
          EXPECT_EQ(raw_audit.epochs, comp_audit.epochs);
        }
      }
    }
  }
}

// --- Corruption hardening on compressed containers ---------------------------

struct CompressedPair {
  std::vector<uint8_t> trace_bytes;
  std::vector<uint8_t> advice_bytes;
  uint64_t epoch_requests = 4;
};

// Small but real: multiple epochs, multi-byte payloads, all stages on.
CompressedPair MakeCompressedPair() {
  WorkloadConfig wl;
  wl.app = "motd";
  wl.kind = WorkloadKind::kWriteHeavy;
  wl.requests = 12;
  wl.seed = 7;
  wl.connections = 3;
  std::vector<Value> inputs = GenerateWorkload(wl);
  AppSpec app = MakeMotdApp();
  ServerConfig config;
  config.concurrency = 3;
  config.seed = 7;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);
  EpochSlices slices = SliceRun(run.trace, run.advice, 4);
  CompressedPair out;
  out.trace_bytes = EncodeTraceSegments(slices, KsegCompression::All());
  out.advice_bytes = EncodeAdviceSegments(slices, KsegCompression::All());
  return out;
}

// Truncating the compressed advice stream anywhere must reject through the
// KAR-SEG rules (and never crash or accept).
TEST(KsegCompressCorruptionTest, TruncationAtEveryByteRejects) {
  CompressedPair pair = MakeCompressedPair();
  CheckResult pristine =
      CheckSegmentStreams(pair.trace_bytes, pair.advice_bytes, pair.epoch_requests);
  ASSERT_TRUE(pristine.ok) << pristine.reason;

  for (size_t cut = 0; cut < pair.advice_bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(pair.advice_bytes.begin(),
                                   pair.advice_bytes.begin() + static_cast<ptrdiff_t>(cut));
    CheckResult res = CheckSegmentStreams(pair.trace_bytes, truncated, pair.epoch_requests);
    EXPECT_FALSE(res.ok) << "truncated advice stream accepted at cut " << cut;
    EXPECT_EQ(res.rule.rfind("KAR-SEG", 0), 0u) << "cut " << cut << ": rule " << res.rule;
  }
}

// Bit-flip hardening, mirroring segment_corruption_test: flips inside any
// CRC-sealed payload (or the CRC itself) must hard-reject; flips in the
// framing bytes — including the flags byte, which the CRC does not cover —
// must produce a clean outcome, and a flags flip that still names known
// stages must be caught by the stage decoders (mis-staged payloads never
// parse on these containers).
TEST(KsegCompressCorruptionTest, BitFlipAtEveryPositionIsClean) {
  CompressedPair pair = MakeCompressedPair();
  const std::vector<uint8_t>& bytes = pair.advice_bytes;

  // Map each frame: [header_begin, payload_begin) is framing; the payload and
  // the 4 CRC bytes before it are sealed.
  std::vector<SegmentRecord> frames = WalkFrames(bytes);
  ASSERT_FALSE(frames.empty());
  std::vector<std::pair<size_t, size_t>> sealed;  // [begin, end) byte ranges.
  std::vector<size_t> flag_offsets;
  for (size_t i = 0; i < frames.size(); ++i) {
    size_t frame_end = i + 1 < frames.size() ? static_cast<size_t>(frames[i + 1].offset)
                                             : bytes.size();
    size_t payload_begin = frame_end - frames[i].payload.size();
    sealed.emplace_back(payload_begin - 4, frame_end);  // CRC + payload.
    flag_offsets.push_back(static_cast<size_t>(frames[i].offset) + 1);
  }
  auto in_sealed = [&](size_t pos) {
    for (const auto& [begin, end] : sealed) {
      if (pos >= begin && pos < end) return true;
    }
    return false;
  };
  auto is_flags_byte = [&](size_t pos) {
    for (size_t off : flag_offsets) {
      if (pos == off) return true;
    }
    return false;
  };

  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = bytes;
      flipped[pos] ^= static_cast<uint8_t>(1u << bit);

      // Lightweight walk: container layer + flag-aware payload decode. This
      // is the exact decode funnel the audit's cursor uses.
      std::string error;
      auto reader = SegmentReader::FromBytes(flipped.data(), flipped.size(), &error);
      bool rejected = reader == nullptr;
      if (reader) {
        SegmentRecord rec;
        while (reader->Next(&rec)) {
          if (rec.kind != SegmentKind::kAdvice ||
              !DecodeAdviceSegmentPayload(rec.payload, rec.flags).has_value()) {
            rejected = true;
            break;
          }
        }
        if (!reader->ok()) {
          rejected = true;
        }
      }
      if (in_sealed(pos)) {
        EXPECT_TRUE(rejected) << "flip at byte " << pos << " bit " << bit
                              << " survived the sealed region";
      } else if (is_flags_byte(pos)) {
        // The CRC does not cover the flags byte, and a flip inside the known
        // mask can re-stage the payload without breaking its parse structure
        // (a lanes flip reinterprets the same varints). The guarantee lives
        // one layer up: the static model check must reject the mis-staged
        // decode (garbled rids never match the trace).
        if (!rejected) {
          CheckResult res =
              CheckSegmentStreams(pair.trace_bytes, flipped, pair.epoch_requests);
          EXPECT_FALSE(res.ok)
              << "flags flip at byte " << pos << " bit " << bit << " was accepted";
        }
      }
      // Other framing flips may or may not be detectable here (an epoch flip
      // is caught by the sequencing rule, not the decoder); the requirement
      // is the clean walk above — no crash, no unbounded allocation.
    }
  }
}

}  // namespace
}  // namespace karousos
