// Wire-protocol framing: torn-frame safety (every byte-boundary split of a
// valid multi-request stream decodes identically), eager rejection of
// streams that can never become valid (bad preface, unknown type, oversized
// length), and payload codec round-trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/common/value.h"
#include "src/net/buffer.h"
#include "src/net/frame.h"

namespace karousos {
namespace {

// A representative client stream: preface, three requests with mixed-shape
// payloads, and a shutdown frame.
std::vector<uint8_t> SampleClientStream() {
  ByteWriter out;
  AppendWirePreface(&out);
  EncodeRequestFrame(0, Value("motd-read"), &out);
  ValueMap m;
  m.emplace("op", Value("set"));
  m.emplace("text", Value(std::string(300, 'x')));
  EncodeRequestFrame(1, Value(std::move(m)), &out);
  EncodeRequestFrame(2, Value(int64_t{42}), &out);
  EncodeShutdownFrame(uint64_t{3}, &out);
  return out.bytes();
}

struct Decoded {
  std::vector<WireFrame> frames;
  bool error = false;
  std::string error_message;
};

// Feeds `stream` into a fresh decoder in chunks of `chunk_size` bytes and
// collects every decoded frame.
Decoded DecodeInChunks(const std::vector<uint8_t>& stream, size_t chunk_size) {
  Decoded result;
  WatermarkBuffer buf;
  FrameDecoder decoder(kDefaultMaxFrameBytes, /*expect_preface=*/true);
  for (size_t offset = 0; offset < stream.size(); offset += chunk_size) {
    size_t n = std::min(chunk_size, stream.size() - offset);
    buf.Append(stream.data() + offset, n);
    for (;;) {
      WireFrame frame;
      DecodeStatus status = decoder.Next(&buf, &frame);
      if (status == DecodeStatus::kFrame) {
        result.frames.push_back(std::move(frame));
        continue;
      }
      if (status == DecodeStatus::kError) {
        result.error = true;
        result.error_message = decoder.error();
      }
      break;
    }
    if (result.error) {
      break;
    }
  }
  return result;
}

TEST(FrameDecoderTest, EveryChunkSizeDecodesIdentically) {
  const std::vector<uint8_t> stream = SampleClientStream();
  const Decoded oracle = DecodeInChunks(stream, stream.size());
  ASSERT_FALSE(oracle.error);
  ASSERT_EQ(oracle.frames.size(), 4u);

  for (size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    Decoded got = DecodeInChunks(stream, chunk);
    ASSERT_FALSE(got.error) << "chunk size " << chunk;
    ASSERT_EQ(got.frames.size(), oracle.frames.size()) << "chunk size " << chunk;
    for (size_t i = 0; i < oracle.frames.size(); ++i) {
      EXPECT_EQ(static_cast<int>(got.frames[i].type), static_cast<int>(oracle.frames[i].type))
          << "chunk size " << chunk << ", frame " << i;
      EXPECT_EQ(got.frames[i].payload, oracle.frames[i].payload)
          << "chunk size " << chunk << ", frame " << i;
    }
  }
}

TEST(FrameDecoderTest, EveryTwoPartSplitDecodesIdentically) {
  const std::vector<uint8_t> stream = SampleClientStream();
  const Decoded oracle = DecodeInChunks(stream, stream.size());

  for (size_t split = 1; split < stream.size(); ++split) {
    WatermarkBuffer buf;
    FrameDecoder decoder(kDefaultMaxFrameBytes, /*expect_preface=*/true);
    std::vector<WireFrame> frames;
    auto drain = [&] {
      for (;;) {
        WireFrame frame;
        DecodeStatus status = decoder.Next(&buf, &frame);
        if (status != DecodeStatus::kFrame) {
          ASSERT_NE(status, DecodeStatus::kError) << "split at " << split;
          return;
        }
        frames.push_back(std::move(frame));
      }
    };
    buf.Append(stream.data(), split);
    drain();
    buf.Append(stream.data() + split, stream.size() - split);
    drain();
    ASSERT_EQ(frames.size(), oracle.frames.size()) << "split at " << split;
    for (size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].payload, oracle.frames[i].payload) << "split at " << split;
    }
  }
}

TEST(FrameDecoderTest, RequestPayloadRoundTrip) {
  const std::vector<uint8_t> stream = SampleClientStream();
  Decoded decoded = DecodeInChunks(stream, 7);
  ASSERT_EQ(decoded.frames.size(), 4u);

  uint64_t seq = 0;
  Value value;
  ASSERT_TRUE(DecodeSeqValuePayload(decoded.frames[0].payload, &seq, &value));
  EXPECT_EQ(seq, 0u);
  EXPECT_EQ(value, Value("motd-read"));

  ASSERT_TRUE(DecodeSeqValuePayload(decoded.frames[2].payload, &seq, &value));
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(value, Value(int64_t{42}));

  uint64_t expected_conns = 0;
  ASSERT_EQ(static_cast<int>(decoded.frames[3].type), static_cast<int>(FrameType::kShutdown));
  ASSERT_TRUE(DecodeShutdownPayload(decoded.frames[3].payload, &expected_conns));
  EXPECT_EQ(expected_conns, 3u);
}

TEST(FrameDecoderTest, BadPrefaceRejectsBeforeFullPrefaceArrives) {
  WatermarkBuffer buf;
  FrameDecoder decoder(kDefaultMaxFrameBytes, /*expect_preface=*/true);
  const uint8_t garbage[] = {'G', 'E', 'T', ' '};
  buf.Append(garbage, sizeof(garbage));
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&buf, &frame), DecodeStatus::kError);
  EXPECT_NE(decoder.error().find("preface"), std::string::npos);
  // The decoder is dead: further calls keep failing.
  EXPECT_EQ(decoder.Next(&buf, &frame), DecodeStatus::kError);
}

TEST(FrameDecoderTest, UnknownFrameTypeRejects) {
  ByteWriter out;
  AppendWirePreface(&out);
  const uint8_t bogus[] = {0x77, 0x01, 0x00, 0x00, 0x00, 0xFF};
  out.WriteBytes(bogus, sizeof(bogus));
  Decoded decoded = DecodeInChunks(out.bytes(), out.bytes().size());
  EXPECT_TRUE(decoded.error);
  EXPECT_NE(decoded.error_message.find("unknown frame type"), std::string::npos);
}

TEST(FrameDecoderTest, OversizedLengthRejectsWithoutBuffering) {
  ByteWriter out;
  AppendWirePreface(&out);
  // type kRequest, length 0xFFFFFFFF: can never complete under the limit.
  const uint8_t header[] = {0x01, 0xFF, 0xFF, 0xFF, 0xFF};
  out.WriteBytes(header, sizeof(header));
  Decoded decoded = DecodeInChunks(out.bytes(), out.bytes().size());
  EXPECT_TRUE(decoded.error);
  EXPECT_NE(decoded.error_message.find("exceeds limit"), std::string::npos);

  // FrameReady must report "ready" for the poisoned head so a puller runs
  // Next and latches the error rather than waiting forever.
  WatermarkBuffer buf;
  FrameDecoder decoder(1024, /*expect_preface=*/false);
  buf.Append(header, sizeof(header));
  EXPECT_TRUE(decoder.FrameReady(buf));
  WireFrame frame;
  EXPECT_EQ(decoder.Next(&buf, &frame), DecodeStatus::kError);
}

TEST(FrameDecoderTest, HeadValidFlagsGarbageWithoutConsuming) {
  WatermarkBuffer buf;
  FrameDecoder decoder(1024, /*expect_preface=*/true);
  std::string error;

  // Valid prefix of the preface: still plausible.
  buf.Append(reinterpret_cast<const uint8_t*>(kWirePreface), 3);
  EXPECT_TRUE(decoder.HeadValid(buf, &error));
  // One wrong byte: rejected immediately.
  const uint8_t wrong = 'Z';
  buf.Append(&wrong, 1);
  EXPECT_FALSE(decoder.HeadValid(buf, &error));
  EXPECT_NE(error.find("preface"), std::string::npos);
  // Nothing was consumed.
  EXPECT_EQ(buf.size(), 4u);
}

TEST(FrameDecoderTest, HeadValidFlagsOversizedLengthAfterPreface) {
  WatermarkBuffer buf;
  FrameDecoder decoder(1024, /*expect_preface=*/true);
  ByteWriter out;
  AppendWirePreface(&out);
  const uint8_t header[] = {0x01, 0xFF, 0xFF, 0xFF, 0x7F};
  out.WriteBytes(header, sizeof(header));
  buf.Append(out.bytes().data(), out.bytes().size());
  std::string error;
  EXPECT_FALSE(decoder.HeadValid(buf, &error));
  EXPECT_NE(error.find("exceeds limit"), std::string::npos);
}

TEST(FrameDecoderTest, ErrorFrameRoundTrip) {
  ByteWriter out;
  EncodeErrorFrame("boom: too big", &out);
  WatermarkBuffer buf;
  buf.Append(out.bytes().data(), out.bytes().size());
  FrameDecoder decoder(kDefaultMaxFrameBytes, /*expect_preface=*/false);
  WireFrame frame;
  ASSERT_EQ(decoder.Next(&buf, &frame), DecodeStatus::kFrame);
  ASSERT_EQ(static_cast<int>(frame.type), static_cast<int>(FrameType::kError));
  std::string message;
  ASSERT_TRUE(DecodeErrorPayload(frame.payload, &message));
  EXPECT_EQ(message, "boom: too big");
}

TEST(FrameDecoderTest, MalformedPayloadsRejectCleanly) {
  uint64_t seq = 0;
  Value value;
  // Truncated: varint only, no value.
  std::vector<uint8_t> truncated = {0x05};
  EXPECT_FALSE(DecodeSeqValuePayload(truncated, &seq, &value));
  // Trailing garbage after a valid encoding.
  ByteWriter ok;
  ok.WriteVarint(1);
  ok.WriteValue(Value("x"));
  std::vector<uint8_t> padded = ok.bytes();
  padded.push_back(0x00);
  EXPECT_FALSE(DecodeSeqValuePayload(padded, &seq, &value));
  // Empty error payload.
  std::string message;
  EXPECT_FALSE(DecodeErrorPayload({}, &message));
}

}  // namespace
}  // namespace karousos
