// The differential scenario harness (ROADMAP item 5): every scenario — an
// honest (app, workload, server schedule) triple — must produce bit-identical
// audit outcomes (verdict, reason, rule, formatted diagnostics) across the
// full configuration matrix:
//
//     threads      {1, 4}
//   × epoch size   {1, 50, 0 = one epoch}
//   × prescreen    {on, off}
//   × path         {one-shot AuditOnly, AuditStreamed, AuditSegments}
//
// The scenarios deliberately span the repo's behavioral surface: the
// pathological R-concurrent app (motd), handler trees over the KV store
// (stacks, wiki), hot-key transaction contention with retries (auction, at
// two skew levels and under weak isolation), and the four apps sharing one
// server (mixed). All scenarios are honest: the accept verdict plus empty
// reason/rule/diagnostics must survive every slicing, threading, and
// prescreen choice. (Adversarial equivalence, where reasons may legitimately
// shift at epoch size 1, is epoch_audit_test's job.)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/audit/stream.h"
#include "src/server/rollover.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Scenario {
  const char* name;
  const char* app;
  WorkloadKind kind;
  size_t requests;
  int concurrency;
  uint64_t seed;
  IsolationLevel isolation = IsolationLevel::kSerializable;
  double zipf_theta = 0.9;
  int hot_items = 4;
};

const Scenario kScenarios[] = {
    {"motd_mixed", "motd", WorkloadKind::kMixed, 60, 8, 2},
    {"stacks_mixed", "stacks", WorkloadKind::kMixed, 80, 10, 3},
    {"wiki_mix", "wiki", WorkloadKind::kWikiMix, 80, 10, 4},
    {"auction_hot", "auction", WorkloadKind::kAuctionMix, 120, 12, 7},
    {"auction_extreme_skew", "auction", WorkloadKind::kAuctionMix, 120, 16, 5,
     IsolationLevel::kSerializable, 1.2, 2},
    // Weak isolation audited at its own level: retries and anomaly windows
    // are in the trace, and the verdict must still be slicing-invariant.
    {"auction_read_committed", "auction", WorkloadKind::kAuctionMix, 120, 12, 7,
     IsolationLevel::kReadCommitted},
    {"mixed_apps", "mixed", WorkloadKind::kMixedApps, 160, 10, 3},
};

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  if (name == "wiki") {
    return MakeWikiApp();
  }
  if (name == "auction") {
    return MakeAuctionApp();
  }
  return MakeMixedApp();
}

struct ScenarioRun {
  AppSpec app;
  ServerRunResult server;
};

ScenarioRun Serve(const Scenario& s) {
  ScenarioRun run{MakeApp(s.app), {}};
  WorkloadConfig wl;
  wl.app = s.app;
  wl.kind = s.kind;
  wl.requests = s.requests;
  wl.seed = s.seed;
  wl.connections = s.concurrency;
  wl.zipf_theta = s.zipf_theta;
  wl.hot_items = s.hot_items;
  ServerConfig config;
  config.isolation = s.isolation;
  config.concurrency = s.concurrency;
  config.seed = s.seed;
  Server server(*run.app.program, config);
  run.server = server.Run(GenerateWorkload(wl));
  return run;
}

void ExpectSameOutcome(const AuditResult& expected, const AuditResult& actual,
                       const std::string& context) {
  EXPECT_EQ(expected.accepted, actual.accepted) << context << ": " << actual.reason;
  EXPECT_EQ(expected.reason, actual.reason) << context;
  EXPECT_EQ(expected.rule, actual.rule) << context;
  ASSERT_EQ(expected.diagnostics.size(), actual.diagnostics.size()) << context;
  for (size_t i = 0; i < expected.diagnostics.size(); ++i) {
    EXPECT_EQ(expected.diagnostics[i].Format(), actual.diagnostics[i].Format())
        << context << " diagnostic " << i;
  }
}

class ScenarioDifferentialTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ScenarioDifferentialTest, OutcomeIsInvariantAcrossTheMatrix) {
  const Scenario& s = GetParam();
  ScenarioRun run = Serve(s);

  // The oracle: serial one-shot audit with the prescreen on.
  VerifierConfig oracle_config{s.isolation, 1, true};
  AuditResult oracle = AuditOnly(run.app, run.server.trace, run.server.advice,
                                 oracle_config, &run.server.untracked_accesses);
  ASSERT_TRUE(oracle.accepted) << s.name << ": " << oracle.reason;

  for (uint64_t epoch_size : {uint64_t{1}, uint64_t{50}, uint64_t{0}}) {
    // KSEG containers for this slicing, encoded once per epoch size.
    EpochSlices slices = SliceRun(run.server.trace, run.server.advice, epoch_size);
    std::vector<uint8_t> trace_kseg = EncodeTraceSegments(slices);
    std::vector<uint8_t> advice_kseg = EncodeAdviceSegments(slices);
    for (unsigned threads : {1u, 4u}) {
      for (bool prescreen : {true, false}) {
        VerifierConfig config{s.isolation, threads, prescreen};
        std::string context = std::string(s.name) +
                              " epoch_size=" + std::to_string(epoch_size) +
                              " threads=" + std::to_string(threads) +
                              " prescreen=" + (prescreen ? "on" : "off");

        // One-shot (epoch size only affects the streamed paths).
        AuditResult oneshot = AuditOnly(run.app, run.server.trace, run.server.advice,
                                        config, &run.server.untracked_accesses);
        ExpectSameOutcome(oracle, oneshot, context + " path=oneshot");

        // Streamed from in-memory structures.
        StreamAuditResult streamed =
            AuditStreamed(run.app, run.server.trace, run.server.advice, config,
                          epoch_size, &run.server.untracked_accesses);
        ExpectSameOutcome(oracle, streamed.audit, context + " path=streamed");

        // Streamed from the serialized KSEG containers (the wire artifact).
        StreamAuditResult from_kseg =
            AuditSegments(run.app, trace_kseg, advice_kseg, config, epoch_size,
                          &run.server.untracked_accesses);
        ExpectSameOutcome(oracle, from_kseg.audit, context + " path=segments");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioDifferentialTest,
                         ::testing::ValuesIn(kScenarios),
                         [](const ::testing::TestParamInfo<Scenario>& param) {
                           return std::string(param.param.name);
                         });

}  // namespace
}  // namespace karousos
