// Dynamic (per-request) handler registration and unregistration (§3): apps
// can register listeners during a request; emits activate whatever is
// registered at that moment; the verifier reconstructs the same activation
// sets from the handler logs (Figure 16's Registered simulation).
#include <gtest/gtest.h>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"

namespace karousos {
namespace {

// Subscription app: the request handler registers a per-request listener for
// the "tick" event (two listeners when the request asks for "double"), emits
// a tick, and the listener(s) respond / accumulate.
AppSpec MakeSubscribeApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("subscribe_handle", [](Ctx& ctx) {
    MultiValue in = ctx.Input();
    ctx.RegisterHandler("tick", "tick_listener");
    if (ctx.Branch(MvEq(MvField(in, "mode"), MultiValue("double")))) {
      ctx.RegisterHandler("tick", "tick_second");
      ctx.DeclareVar("ticks", VarScope::kRequest);
      ctx.WriteVar("ticks", VarScope::kRequest, MultiValue(0));
      ctx.Emit("tick", MvMakeMap({{"x", MvField(in, "x")}, {"both", MultiValue(true)}}));
    } else if (ctx.Branch(MvEq(MvField(in, "mode"), MultiValue("cancel")))) {
      // Register then unregister: the emit must activate nothing, and the
      // request handler itself responds.
      ctx.UnregisterHandler("tick", "tick_listener");
      ctx.Emit("tick", MvMakeMap({{"x", MvField(in, "x")}}));
      ctx.Respond(MvMakeMap({{"cancelled", MultiValue(true)}}));
    } else {
      ctx.Emit("tick", MvMakeMap({{"x", MvField(in, "x")}}));
    }
  });
  program->DefineFunction("tick_listener", [](Ctx& ctx) {
    MultiValue x = MvField(ctx.Input(), "x");
    if (ctx.Branch(MvField(ctx.Input(), "both"))) {
      // Double mode: join with the sibling listener via the counter.
      MultiValue ticks = MvAdd(ctx.ReadVar("ticks", VarScope::kRequest), MultiValue(1));
      ctx.WriteVar("ticks", VarScope::kRequest, ticks);
      if (ctx.Branch(MvEq(ticks, MultiValue(2)))) {
        ctx.Respond(MvMakeMap({{"sum", MvAdd(x, x)}}));
      }
      return;
    }
    ctx.Respond(MvMakeMap({{"echo", x}}));
  });
  program->DefineFunction("tick_second", [](Ctx& ctx) {
    MultiValue ticks = MvAdd(ctx.ReadVar("ticks", VarScope::kRequest), MultiValue(1));
    ctx.WriteVar("ticks", VarScope::kRequest, ticks);
    if (ctx.Branch(MvEq(ticks, MultiValue(2)))) {
      MultiValue x = MvField(ctx.Input(), "x");
      ctx.Respond(MvMakeMap({{"sum", MvAdd(x, x)}}));
    }
  });
  program->SetInit(
      [](Ctx& ctx) { ctx.RegisterHandler(kRequestEventName, "subscribe_handle"); });
  return AppSpec{"subscribe", std::move(program)};
}

TEST(DynamicHandlersTest, SingleListenerRoundTrip) {
  AppSpec app = MakeSubscribeApp();
  std::vector<Value> inputs = {MakeMap({{"mode", "single"}, {"x", 21}})};
  ServerConfig config;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.server.trace.Response(1)->Field("echo"), Value(21));
}

TEST(DynamicHandlersTest, TwoListenersActivatedByOneEmit) {
  AppSpec app = MakeSubscribeApp();
  std::vector<Value> inputs = {MakeMap({{"mode", "double"}, {"x", 10}})};
  ServerConfig config;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.server.trace.Response(1)->Field("sum"), Value(20));
  // One emit activated two handlers: 3 opcount entries for the request.
  EXPECT_EQ(result.server.advice.opcounts.size(), 3u);
}

TEST(DynamicHandlersTest, UnregisterSilencesTheEmit) {
  AppSpec app = MakeSubscribeApp();
  std::vector<Value> inputs = {MakeMap({{"mode", "cancel"}, {"x", 5}})};
  ServerConfig config;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.server.trace.Response(1)->Field("cancelled"), Value(true));
  // Only the request handler ran.
  EXPECT_EQ(result.server.advice.opcounts.size(), 1u);
}

TEST(DynamicHandlersTest, MixedModesGroupSeparatelyAndAllAudit) {
  AppSpec app = MakeSubscribeApp();
  std::vector<Value> inputs;
  for (int i = 0; i < 24; ++i) {
    const char* modes[] = {"single", "double", "cancel"};
    inputs.push_back(MakeMap({{"mode", modes[i % 3]}, {"x", i}}));
  }
  ServerConfig config;
  config.concurrency = 6;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  // In double mode either listener may respond depending on dispatch order,
  // so there are up to four groups (single, cancel, double-a, double-b).
  EXPECT_GE(result.audit.stats.groups, 3u);
  EXPECT_LE(result.audit.stats.groups, 4u);
}

TEST(DynamicHandlersTest, DroppedRegisterEntryRejected) {
  // Removing the register entry from the handler log makes the later emit
  // activate nothing per the advice, while re-execution still emits to a
  // registered listener — the books cannot balance.
  AppSpec app = MakeSubscribeApp();
  std::vector<Value> inputs = {MakeMap({{"mode", "single"}, {"x", 1}})};
  ServerConfig config;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);
  auto& log = run.advice.handler_logs.at(1);
  bool removed = false;
  for (auto it = log.begin(); it != log.end(); ++it) {
    if (it->kind == HandlerLogEntry::Kind::kRegister) {
      log.erase(it);
      removed = true;
      break;
    }
  }
  ASSERT_TRUE(removed);
  AuditResult audit = AuditOnly(app, run.trace, run.advice, config.isolation);
  EXPECT_FALSE(audit.accepted);
}

TEST(DynamicHandlersTest, ForgedExtraRegistrationRejected) {
  // Injecting a registration the program never performed: the emitted event
  // would activate an extra handler whose opcounts entry is missing, or, if
  // the server also fabricates opcounts, a handler re-execution never runs.
  AppSpec app = MakeSubscribeApp();
  std::vector<Value> inputs = {MakeMap({{"mode", "single"}, {"x", 1}})};
  ServerConfig config;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);
  auto& log = run.advice.handler_logs.at(1);
  // Forge: before the emit, claim tick_second was also registered.
  HandlerLogEntry forged;
  forged.kind = HandlerLogEntry::Kind::kRegister;
  forged.hid = log.front().hid;
  forged.opnum = log.front().opnum;  // Collides -> caught; use fresh position.
  forged.opnum = static_cast<OpNum>(log.size() + 5);
  forged.event = EventId("tick");
  forged.function = DigestOf("tick_second");
  log.insert(log.begin(), forged);
  run.advice.opcounts[{1, forged.hid}] =
      std::max(run.advice.opcounts[{1, forged.hid}], forged.opnum);
  AuditResult audit = AuditOnly(app, run.trace, run.advice, config.isolation);
  EXPECT_FALSE(audit.accepted);
}

}  // namespace
}  // namespace karousos
