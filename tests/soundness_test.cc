// Soundness (§2.1): a misbehaving server — bogus responses, doctored logs,
// impossible interleavings — must be REJECTED, no matter how the advice is
// arranged. Each test perturbs an honest run (or hand-builds advice) and
// checks the verifier rejects.
#include <gtest/gtest.h>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"
#include "src/kem/varid.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct HonestRun {
  AppSpec app;
  ServerRunResult server;
  IsolationLevel isolation = IsolationLevel::kSerializable;
};

HonestRun RunMotd(int concurrency = 4) {
  HonestRun run{MakeMotdApp(), {}, IsolationLevel::kSerializable};
  WorkloadConfig wl;
  wl.app = "motd";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 40;
  ServerConfig config;
  config.concurrency = concurrency;
  Server server(*run.app.program, config);
  run.server = server.Run(GenerateWorkload(wl));
  return run;
}

HonestRun RunStacks(int concurrency = 8) {
  HonestRun run{MakeStacksApp(), {}, IsolationLevel::kSerializable};
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 60;
  ServerConfig config;
  config.concurrency = concurrency;
  Server server(*run.app.program, config);
  run.server = server.Run(GenerateWorkload(wl));
  return run;
}

AuditResult Verify(const HonestRun& run) {
  return AuditOnly(run.app, run.server.trace, run.server.advice, run.isolation);
}

TEST(SoundnessTest, HonestBaselineAccepts) {
  HonestRun run = RunStacks();
  AuditResult audit = Verify(run);
  EXPECT_TRUE(audit.accepted) << audit.reason;
}

TEST(SoundnessTest, ForgedResponseRejected) {
  HonestRun run = RunMotd();
  for (TraceEvent& ev : run.server.trace.events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"msg", "forged"}});
      break;
    }
  }
  EXPECT_FALSE(Verify(run).accepted);
}

TEST(SoundnessTest, UnbalancedTraceRejected) {
  HonestRun run = RunMotd();
  // Drop the last response.
  for (auto it = run.server.trace.events.rbegin(); it != run.server.trace.events.rend(); ++it) {
    if (it->kind == TraceEvent::Kind::kResponse) {
      run.server.trace.events.erase(std::next(it).base());
      break;
    }
  }
  AuditResult audit = Verify(run);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("balanced"), std::string::npos) << audit.reason;
}

TEST(SoundnessTest, TamperedVarLogWriteValueRejected) {
  // Simulate-and-check (§4.3): re-executed write values must match the log.
  HonestRun run = RunMotd();
  ASSERT_FALSE(run.server.advice.var_logs.empty());
  bool mutated = false;
  for (auto& [vid, log] : run.server.advice.var_logs) {
    for (auto& [op, entry] : log) {
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        entry.value = Value("poisoned");
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  ASSERT_TRUE(mutated);
  AuditResult audit = Verify(run);
  EXPECT_FALSE(audit.accepted);
}

TEST(SoundnessTest, ExtraVarLogEntryRejected) {
  // A log entry that re-execution never produces could smuggle values into
  // future reads; the verifier insists every entry is produced.
  HonestRun run = RunMotd();
  VarId vid = ResolveVarId("motd", VarScope::kGlobal, 0);
  VarLogEntry ghost;
  ghost.kind = VarLogEntry::Kind::kWrite;
  ghost.value = Value("ghost");
  ghost.prec = kNilOp;
  run.server.advice.var_logs[vid].emplace(OpRef{1, 0x1234, 77}, ghost);
  AuditResult audit = Verify(run);
  EXPECT_FALSE(audit.accepted);
}

TEST(SoundnessTest, DroppedHandlerLogEntryRejected) {
  HonestRun run = RunStacks();
  bool mutated = false;
  for (auto& [rid, log] : run.server.advice.handler_logs) {
    if (!log.empty()) {
      log.pop_back();
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(Verify(run).accepted);
}

TEST(SoundnessTest, InflatedOpcountRejected) {
  HonestRun run = RunMotd();
  ASSERT_FALSE(run.server.advice.opcounts.empty());
  run.server.advice.opcounts.begin()->second += 1;
  EXPECT_FALSE(Verify(run).accepted);
}

TEST(SoundnessTest, OpcountForUnknownRequestRejected) {
  HonestRun run = RunMotd();
  run.server.advice.opcounts[{9999, 0x42}] = 3;
  AuditResult audit = Verify(run);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("not in trace"), std::string::npos) << audit.reason;
}

TEST(SoundnessTest, MissingResponseEmittedByRejected) {
  HonestRun run = RunMotd();
  ASSERT_FALSE(run.server.advice.response_emitted_by.empty());
  run.server.advice.response_emitted_by.erase(run.server.advice.response_emitted_by.begin());
  EXPECT_FALSE(Verify(run).accepted);
}

TEST(SoundnessTest, WrongGroupTagRejected) {
  // Move a 'set' request into a 'get' group: control flow diverges.
  HonestRun run = RunMotd();
  RequestId set_rid = 0;
  RequestId get_rid = 0;
  for (const TraceEvent& ev : run.server.trace.events) {
    if (ev.kind != TraceEvent::Kind::kRequest) {
      continue;
    }
    if (ev.payload.Field("op") == Value("set") && set_rid == 0) {
      set_rid = ev.rid;
    }
    if (ev.payload.Field("op") == Value("get") && get_rid == 0) {
      get_rid = ev.rid;
    }
  }
  ASSERT_NE(set_rid, 0u);
  ASSERT_NE(get_rid, 0u);
  run.server.advice.tags[set_rid] = run.server.advice.tags[get_rid];
  AuditResult audit = Verify(run);
  EXPECT_FALSE(audit.accepted);
}

TEST(SoundnessTest, DroppedNondetRecordRejected) {
  // A comment storm on one wiki page produces no-wait lock conflicts (the
  // S-lock window spans the two comment handlers); dropping a recorded
  // conflict marker makes re-execution take the non-conflict path and
  // diverge from the logs.
  HonestRun run{MakeWikiApp(), {}, IsolationLevel::kSerializable};
  std::vector<Value> inputs = {MakeMap(
      {{"op", "create_page"}, {"id", "p1"}, {"title", "T"}, {"content", "C"}, {"conn", 0}})};
  for (int i = 0; i < 40; ++i) {
    inputs.push_back(MakeMap(
        {{"op", "create_comment"}, {"page", "p1"}, {"text", "hi"}, {"conn", i % 8}}));
  }
  ServerConfig config;
  config.concurrency = 8;
  config.seed = 5;
  Server server(*run.app.program, config);
  run.server = server.Run(inputs);
  ASSERT_FALSE(run.server.advice.nondet.empty()) << "schedule produced no conflicts";
  ASSERT_TRUE(Verify(run).accepted);
  run.server.advice.nondet.erase(run.server.advice.nondet.begin());
  EXPECT_FALSE(Verify(run).accepted);
}

TEST(SoundnessTest, ForgedConflictMarkerRejected) {
  // Marking a successful state op as conflicted shifts every subsequent
  // transaction-log position.
  HonestRun run = RunStacks();
  TxnKey victim{};
  OpRef op{};
  bool found = false;
  for (const auto& [txn, log] : run.server.advice.tx_logs) {
    for (const TxOperation& entry : log) {
      if (entry.type == TxOpType::kGet) {
        victim = txn;
        op = OpRef{txn.rid, entry.hid, entry.opnum};
        found = true;
        break;
      }
    }
    if (found) {
      break;
    }
  }
  ASSERT_TRUE(found);
  run.server.advice.nondet[op] = NondetRecord{NondetRecord::Kind::kConflict, Value()};
  EXPECT_FALSE(Verify(run).accepted);
  (void)victim;
}

TEST(SoundnessTest, SwappedWriteOrderRejected) {
  // Two sequential submits of the same dump: reversing their write order
  // makes the dependency graph cyclic (write-depend vs read-depend).
  AppSpec app = MakeStacksApp();
  std::vector<Value> inputs = {
      MakeMap({{"op", "submit"}, {"dump", "once"}}),
      MakeMap({{"op", "submit"}, {"dump", "once"}}),
  };
  ServerConfig config;
  config.concurrency = 1;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);
  ASSERT_GE(run.advice.write_order.size(), 2u);
  std::swap(run.advice.write_order.front(), run.advice.write_order.back());
  AuditResult audit = AuditOnly(app, run.trace, run.advice, config.isolation);
  EXPECT_FALSE(audit.accepted);
}

TEST(SoundnessTest, GetFromAbortedTransactionRejected) {
  // Redirect a committed GET's dictating write to a PUT of an aborted (or
  // non-final) transaction: phenomenon G1a/G1b.
  HonestRun run = RunStacks(10);
  // Find a committed GET and any PUT not in the write order.
  std::set<TxOpRef> in_order(run.server.advice.write_order.begin(),
                             run.server.advice.write_order.end());
  TxOperation* get_op = nullptr;
  for (auto& [txn, log] : run.server.advice.tx_logs) {
    if (log.empty() || log.back().type != TxOpType::kTxCommit) {
      continue;
    }
    for (TxOperation& entry : log) {
      if (entry.type == TxOpType::kGet && entry.get_found) {
        get_op = &entry;
        break;
      }
    }
    if (get_op != nullptr) {
      break;
    }
  }
  if (get_op == nullptr) {
    GTEST_SKIP() << "no committed GET in this schedule";
  }
  // Forge a dictating write reference to a bogus position: AnalyzeLogs or the
  // G1 checks must catch it.
  TxOpRef forged = get_op->get_from;
  forged.index += 1;
  get_op->get_from = forged;
  EXPECT_FALSE(Verify(run).accepted);
}

// The load-buffering litmus app used by the impossible-interleaving tests:
// each request reads one shared variable, then writes another, and responds
// with the value read.
AppSpec MakeLitmusApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("litmus_handle", [](Ctx& ctx) {
    MultiValue in = ctx.Input();
    MultiValue read_name = MvField(in, "r");
    MultiValue value = ctx.Branch(MvEq(read_name, MultiValue("x")))
                           ? ctx.ReadVar("x", VarScope::kGlobal)
                           : ctx.ReadVar("y", VarScope::kGlobal);
    if (ctx.Branch(MvEq(MvField(in, "w"), MultiValue("x")))) {
      ctx.WriteVar("x", VarScope::kGlobal, MvField(in, "val"));
    } else {
      ctx.WriteVar("y", VarScope::kGlobal, MvField(in, "val"));
    }
    ctx.Respond(MvMakeMap({{"v", value}}));
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("x", VarScope::kGlobal);
    ctx.WriteVar("x", VarScope::kGlobal, MultiValue(0));
    ctx.DeclareVar("y", VarScope::kGlobal);
    ctx.WriteVar("y", VarScope::kGlobal, MultiValue(0));
    ctx.RegisterHandler(kRequestEventName, "litmus_handle");
  });
  return AppSpec{"litmus", std::move(program)};
}

// The §4.3 attack family (Figure 5): advice + responses claiming an
// execution that no interleaving of the program could produce. Request 1
// reads y then writes x := 1; request 2 reads x then writes y := 2. The
// server alleges r1 read y == 2 AND r2 read x == 1 — a causal cycle.
TEST(SoundnessTest, ImpossibleInterleavingRejected) {
  AppSpec app = MakeLitmusApp();
  std::vector<Value> inputs = {
      MakeMap({{"r", "y"}, {"w", "x"}, {"val", 1}}),
      MakeMap({{"r", "x"}, {"w", "y"}, {"val", 2}}),
  };
  ServerConfig config;
  config.concurrency = 2;
  config.seed = 1;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);

  // Coordinates: single request handler; ops are 1 = read, 2 = write.
  FunctionId f = DigestOf("litmus_handle");
  HandlerId hid = ComputeHandlerId(f, kNoHandler, 0);
  VarId x = ResolveVarId("x", VarScope::kGlobal, 0);
  VarId y = ResolveVarId("y", VarScope::kGlobal, 0);
  OpRef r1_read{1, hid, 1};
  OpRef r1_write{1, hid, 2};
  OpRef r2_read{2, hid, 1};
  OpRef r2_write{2, hid, 2};

  Advice& a = run.advice;
  a.var_logs.clear();
  // x's log: r1 writes 1; r2's read observes it.
  a.var_logs[x][r1_write] = VarLogEntry{VarLogEntry::Kind::kWrite, Value(int64_t{1}), kNilOp};
  a.var_logs[x][r2_read] = VarLogEntry{VarLogEntry::Kind::kRead, Value(), r1_write};
  // y's log: r2 writes 2; r1's read observes it.
  a.var_logs[y][r2_write] = VarLogEntry{VarLogEntry::Kind::kWrite, Value(int64_t{2}), kNilOp};
  a.var_logs[y][r1_read] = VarLogEntry{VarLogEntry::Kind::kRead, Value(), r2_write};
  // Responses consistent with the alleged (impossible) reads.
  for (TraceEvent& ev : run.trace.events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"v", ev.rid == 1 ? Value(int64_t{2}) : Value(int64_t{1})}});
    }
  }
  AuditResult audit = AuditOnly(app, run.trace, a, config.isolation);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("cycle"), std::string::npos) << audit.reason;
}

// Reads-from-the-future: request 1 responds before request 2 even arrives,
// yet the advice claims r1's read observed r2's write. The fed value equals
// what r1 really returned, so only consistent-ordering verification (the
// graph with time-precedence edges) can catch it.
TEST(SoundnessTest, ReadFromTheFutureRejected) {
  AppSpec app = MakeLitmusApp();
  std::vector<Value> inputs = {
      MakeMap({{"r", "y"}, {"w", "x"}, {"val", 7}}),   // r1: reads y (initial 0).
      MakeMap({{"r", "x"}, {"w", "y"}, {"val", 0}}),   // r2: writes y := 0 later.
  };
  ServerConfig config;
  config.concurrency = 1;  // Strictly sequential: r1 finishes before r2 starts.
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);
  ASSERT_EQ(run.trace.Response(1)->Field("v"), Value(int64_t{0}));

  FunctionId f = DigestOf("litmus_handle");
  HandlerId hid = ComputeHandlerId(f, kNoHandler, 0);
  VarId y = ResolveVarId("y", VarScope::kGlobal, 0);
  OpRef r1_read{1, hid, 1};
  OpRef r2_write{2, hid, 2};
  // Claim r1's read of y observed r2's write of 0 — same value r1 truly
  // read, but from the future.
  run.advice.var_logs[y][r2_write] =
      VarLogEntry{VarLogEntry::Kind::kWrite, Value(int64_t{0}), kNilOp};
  run.advice.var_logs[y][r1_read] = VarLogEntry{VarLogEntry::Kind::kRead, Value(), r2_write};

  AuditResult audit = AuditOnly(app, run.trace, run.advice, config.isolation);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("cycle"), std::string::npos) << audit.reason;
}

// The §4.4 example, verbatim: request r1 issues op1 = GET(k); op2 = write(x, 1)
// and request r2 issues op3 = read(x); op4 = PUT(k, 1). The server claims
// op3 reads from op2 (true) AND op1 reads from op4 — "preposterously, that
// op1 read from an operation that, according to the rest of the advice, was
// executed after it". The WR edges across program variables and external
// state close a cycle in G.
AppSpec MakeCrossStateApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("cross_handle", [](Ctx& ctx) {
    MultiValue in = ctx.Input();
    if (ctx.Branch(MvEq(MvField(in, "role"), MultiValue("r1")))) {
      TxHandle tx = ctx.TxStart();
      TxGetResult got = ctx.TxGet(tx, MultiValue("k"));  // op1
      ctx.Branch(MultiValue(got.conflict));
      ctx.Branch(MultiValue(ctx.TxCommit(tx)));
      ctx.WriteVar("x", VarScope::kGlobal, MvField(in, "v"));  // op2
      ctx.Respond(MvMakeMap({{"got", got.value}}));
    } else {
      MultiValue x = ctx.ReadVar("x", VarScope::kGlobal);  // op3
      TxHandle tx = ctx.TxStart();
      bool ok = ctx.TxPut(tx, MultiValue("k"), x);  // op4
      ctx.Branch(MultiValue(ok));
      ctx.Branch(MultiValue(ctx.TxCommit(tx)));
      ctx.Respond(MvMakeMap({{"put", x}}));
    }
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("x", VarScope::kGlobal);
    ctx.WriteVar("x", VarScope::kGlobal, MultiValue(0));
    ctx.RegisterHandler(kRequestEventName, "cross_handle");
  });
  return AppSpec{"crossstate", std::move(program)};
}

TEST(SoundnessTest, CrossStateReadFromFutureRejected) {
  AppSpec app = MakeCrossStateApp();
  std::vector<Value> inputs = {
      MakeMap({{"role", "r1"}, {"v", 1}}),
      MakeMap({{"role", "r2"}}),
  };
  ServerConfig config;
  config.concurrency = 2;  // Both requests in flight: no time-precedence edge.
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);
  // Identify r2's PUT in the transaction logs.
  TxOpRef put_ref = kNilTxOp;
  for (const auto& [txn, log] : run.advice.tx_logs) {
    for (uint32_t i = 1; i <= log.size(); ++i) {
      if (txn.rid == 2 && log[i - 1].type == TxOpType::kPut) {
        put_ref = TxOpRef{txn.rid, txn.tid, i};
      }
    }
  }
  ASSERT_FALSE(put_ref.IsNil());
  // Forge r1's GET to have read r2's PUT, and fix r1's response to match the
  // fed value (so simulate-and-check alone cannot catch it).
  bool forged = false;
  for (auto& [txn, log] : run.advice.tx_logs) {
    if (txn.rid != 1) {
      continue;
    }
    for (TxOperation& op : log) {
      if (op.type == TxOpType::kGet) {
        op.get_found = true;
        op.get_from = put_ref;
        forged = true;
      }
    }
  }
  ASSERT_TRUE(forged);
  for (TraceEvent& ev : run.trace.events) {
    if (ev.kind == TraceEvent::Kind::kResponse && ev.rid == 1) {
      ev.payload = MakeMap({{"got", 1}});
    }
  }
  AuditResult audit = AuditOnly(app, run.trace, run.advice, config.isolation);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("cycle"), std::string::npos) << audit.reason;
}

TEST(SoundnessTest, WrongEmitEventInHandlerLogRejected) {
  HonestRun run = RunStacks();
  bool mutated = false;
  for (auto& [rid, log] : run.server.advice.handler_logs) {
    for (HandlerLogEntry& e : log) {
      if (e.kind == HandlerLogEntry::Kind::kEmit) {
        e.event = EventId("some_other_event");
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(Verify(run).accepted);
}

TEST(SoundnessTest, GetClaimedNotFoundRejected) {
  // Claiming a successful GET found nothing starves the re-executed read; the
  // fed nil diverges from the original execution and the audit rejects.
  HonestRun run = RunStacks();
  bool mutated = false;
  for (auto& [txn, log] : run.server.advice.tx_logs) {
    for (TxOperation& op : log) {
      if (op.type == TxOpType::kGet && op.get_found) {
        op.get_found = false;
        op.get_from = kNilTxOp;
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  if (!mutated) {
    GTEST_SKIP() << "no found GET in this schedule";
  }
  EXPECT_FALSE(Verify(run).accepted);
}

TEST(SoundnessTest, LitmusHonestBaselineAccepts) {
  // The litmus app itself audits cleanly when the server is honest.
  AppSpec app = MakeLitmusApp();
  std::vector<Value> inputs = {
      MakeMap({{"r", "y"}, {"w", "x"}, {"val", 1}}),
      MakeMap({{"r", "x"}, {"w", "y"}, {"val", 2}}),
      MakeMap({{"r", "x"}, {"w", "x"}, {"val", 3}}),
  };
  ServerConfig config;
  config.concurrency = 3;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  EXPECT_TRUE(result.audit.accepted) << result.audit.reason;
}

}  // namespace
}  // namespace karousos
