// Stress target for the parallel audit engine, meant to run under
// ThreadSanitizer (`ctest -L tsan` — build with KAROUSOS_SANITIZE=thread).
// Repeatedly audits mixed workloads of all three example apps at threads=8,
// interleaving accepting and rejecting advice, so that the pool's publish /
// steal / drain paths and the group-isolated verifier state get exercised
// across many job epochs. Any data race in the engine is a determinism bug
// waiting to happen; TSan turns it into a hard failure here.
#include <gtest/gtest.h>

#include <string>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

ServerRunResult Serve(const AppSpec& app, const std::string& name, WorkloadKind kind,
                      uint64_t seed) {
  WorkloadConfig wl;
  wl.app = name;
  wl.kind = kind;
  wl.requests = 48;
  wl.seed = seed;
  wl.connections = 8;
  ServerConfig config;
  config.concurrency = 8;
  config.seed = seed;
  Server server(*app.program, config);
  return server.Run(GenerateWorkload(wl));
}

TEST(ParallelStressTest, RepeatedMixedWorkloadAuditsAtEightThreads) {
  struct AppCase {
    std::string name;
    WorkloadKind kind;
  };
  const AppCase cases[] = {
      {"motd", WorkloadKind::kMixed},
      {"stacks", WorkloadKind::kMixed},
      {"wiki", WorkloadKind::kWikiMix},
  };
  for (int round = 0; round < 6; ++round) {
    for (const AppCase& c : cases) {
      SCOPED_TRACE(c.name + " round " + std::to_string(round));
      AppSpec app = c.name == "motd"     ? MakeMotdApp()
                    : c.name == "stacks" ? MakeStacksApp()
                                         : MakeWikiApp();
      ServerRunResult run = Serve(app, c.name, c.kind, 100 + round);
      AuditResult accept = AuditOnly(app, run.trace, run.advice,
                                     VerifierConfig{IsolationLevel::kSerializable, 8});
      EXPECT_TRUE(accept.accepted) << accept.reason;

      // Rejecting audit in the same round: the engine must tear its pool and
      // group states down cleanly mid-merge as well.
      if (!run.advice.opcounts.empty()) {
        run.advice.opcounts.begin()->second += 1;
        AuditResult reject = AuditOnly(app, run.trace, run.advice,
                                       VerifierConfig{IsolationLevel::kSerializable, 8});
        EXPECT_FALSE(reject.accepted);
      }
    }
  }
}

TEST(ParallelStressTest, HardwareThreadsOnOneTrace) {
  // Thread count 0 (all hardware threads) hammering one trace back to back.
  AppSpec app = MakeStacksApp();
  ServerRunResult run = Serve(app, "stacks", WorkloadKind::kMixed, 42);
  for (int i = 0; i < 10; ++i) {
    AuditResult audit =
        AuditOnly(app, run.trace, run.advice, VerifierConfig{IsolationLevel::kSerializable, 0});
    EXPECT_TRUE(audit.accepted) << audit.reason;
  }
}

}  // namespace
}  // namespace karousos
