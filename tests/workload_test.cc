#include "src/workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/baseline/sequential.h"
#include "src/server/server.h"
#include "src/apps/app.h"

namespace karousos {
namespace {

TEST(WorkloadTest, DeterministicForFixedSeed) {
  WorkloadConfig config;
  config.app = "stacks";
  config.kind = WorkloadKind::kMixed;
  config.requests = 100;
  config.seed = 5;
  std::vector<Value> seed5 = GenerateWorkload(config);
  EXPECT_EQ(seed5, GenerateWorkload(config));
  config.seed = 6;
  EXPECT_NE(seed5, GenerateWorkload(config));
}

TEST(WorkloadTest, MotdMixRatiosApproximate) {
  WorkloadConfig config;
  config.app = "motd";
  config.kind = WorkloadKind::kWriteHeavy;
  config.requests = 1000;
  std::vector<Value> reqs = GenerateWorkload(config);
  int writes = 0;
  for (const Value& r : reqs) {
    if (r.Field("op") == Value("set")) {
      ++writes;
    }
  }
  EXPECT_GT(writes, 850);
  EXPECT_LT(writes, 950);
}

TEST(WorkloadTest, WikiMixRatiosApproximate) {
  WorkloadConfig config;
  config.app = "wiki";
  config.kind = WorkloadKind::kWikiMix;
  config.requests = 1000;
  config.connections = 16;
  std::vector<Value> reqs = GenerateWorkload(config);
  int creates = 0;
  int comments = 0;
  int renders = 0;
  for (const Value& r : reqs) {
    std::string op = r.Field("op").AsString();
    creates += op == "create_page";
    comments += op == "create_comment";
    renders += op == "render";
    EXPECT_LT(r.Field("conn").AsInt(), 16);
  }
  EXPECT_NEAR(creates, 250, 60);
  EXPECT_NEAR(comments, 150, 60);
  EXPECT_NEAR(renders, 600, 80);
}

TEST(WorkloadTest, StacksSubmitsAreMostlyRepeats) {
  WorkloadConfig config;
  config.app = "stacks";
  config.kind = WorkloadKind::kWriteHeavy;
  config.requests = 1000;
  std::vector<Value> reqs = GenerateWorkload(config);
  std::set<std::string> unique;
  int submits = 0;
  for (const Value& r : reqs) {
    if (r.Field("op") == Value("submit")) {
      ++submits;
      unique.insert(r.Field("dump").AsString());
    }
  }
  ASSERT_GT(submits, 800);
  // ~10% of submits introduce a new dump.
  EXPECT_LT(unique.size(), static_cast<size_t>(submits) / 4);
  EXPECT_GT(unique.size(), static_cast<size_t>(submits) / 25);
}

TEST(WorkloadTest, AuctionMixRatiosAndShape) {
  WorkloadConfig config;
  config.app = "auction";
  config.kind = WorkloadKind::kAuctionMix;
  config.requests = 1000;
  config.connections = 12;
  config.hot_items = 4;
  std::vector<Value> reqs = GenerateWorkload(config);
  ASSERT_EQ(reqs.size(), 1000u);
  // Opens first, closes last, so the contended middle always hits live rows.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reqs[static_cast<size_t>(i)].Field("op"), Value("open"));
    EXPECT_EQ(reqs[reqs.size() - 4 + static_cast<size_t>(i)].Field("op"), Value("close"));
  }
  int bids = 0;
  int queries = 0;
  int verifies = 0;
  int lists = 0;
  for (const Value& r : reqs) {
    std::string op = r.Field("op").AsString();
    bids += op == "bid";
    queries += op == "query";
    verifies += op == "verify";
    lists += op == "list";
    if (op == "bid") {
      EXPECT_GE(r.Field("amount").AsInt(), 1);
      EXPECT_LE(r.Field("amount").AsInt(), 1000);
    }
  }
  EXPECT_NEAR(bids, 620, 60);
  EXPECT_GT(queries, verifies);
  EXPECT_GT(verifies, lists);
  EXPECT_GT(lists, 0);
}

TEST(WorkloadTest, ZipfSamplerMatchesTheDistribution) {
  // Chi-square goodness of fit of 20k draws against the Zipf(0.9) pmf over 8
  // items. With 7 degrees of freedom the 99.9th percentile is 24.3; a fixed
  // seed makes the statistic deterministic, so the bound documents fit
  // rather than flaking.
  constexpr size_t kItems = 8;
  constexpr size_t kDraws = 20000;
  constexpr double kTheta = 0.9;
  ZipfSampler zipf(kItems, kTheta);
  Rng rng(42);
  size_t counts[kItems] = {};
  for (size_t i = 0; i < kDraws; ++i) {
    size_t k = zipf.Sample(rng);
    ASSERT_LT(k, kItems);
    ++counts[k];
  }
  double norm = 0;
  for (size_t k = 0; k < kItems; ++k) {
    norm += 1.0 / std::pow(static_cast<double>(k + 1), kTheta);
  }
  double chi2 = 0;
  for (size_t k = 0; k < kItems; ++k) {
    double expected =
        kDraws * (1.0 / std::pow(static_cast<double>(k + 1), kTheta)) / norm;
    double diff = static_cast<double>(counts[k]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 24.3) << "chi-square vs Zipf(0.9) pmf";
  // The skew is real: the hottest item beats the coldest by the pmf ratio
  // (8^0.9 ~ 6.5), well clear of sampling noise.
  EXPECT_GT(counts[0], 4 * counts[kItems - 1]);
}

TEST(WorkloadTest, ZipfThetaZeroIsUniform) {
  constexpr size_t kItems = 10;
  constexpr size_t kDraws = 20000;
  ZipfSampler zipf(kItems, 0.0);
  Rng rng(99);
  size_t counts[kItems] = {};
  for (size_t i = 0; i < kDraws; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  double chi2 = 0;
  double expected = static_cast<double>(kDraws) / kItems;
  for (size_t count : counts) {
    double diff = static_cast<double>(count) - expected;
    chi2 += diff * diff / expected;
  }
  // 9 dof, 99.9th percentile = 27.9.
  EXPECT_LT(chi2, 27.9) << "chi-square vs uniform";
}

TEST(WorkloadTest, OpenLoopArrivalsAreMonotoneAndDeterministic) {
  WorkloadConfig config;
  config.app = "auction";
  config.kind = WorkloadKind::kAuctionMix;
  config.requests = 400;
  config.seed = 17;
  config.arrival = ArrivalPattern::kUniform;
  config.mean_rate = 1000.0;
  OpenLoopWorkload wl = GenerateOpenLoop(config);
  ASSERT_EQ(wl.inputs.size(), 400u);
  ASSERT_EQ(wl.arrival_seconds.size(), 400u);
  double prev = 0;
  for (double t : wl.arrival_seconds) {
    EXPECT_GE(t, prev);
    prev = t;
  }
  // Poisson at 1000 req/s: 400 arrivals span ~0.4s (generous 3x bounds).
  EXPECT_GT(prev, 0.4 / 3);
  EXPECT_LT(prev, 0.4 * 3);
  OpenLoopWorkload again = GenerateOpenLoop(config);
  EXPECT_EQ(wl.inputs, again.inputs);
  EXPECT_EQ(wl.arrival_seconds, again.arrival_seconds);
  // Closed-loop configs produce no timestamps.
  config.arrival = ArrivalPattern::kClosed;
  EXPECT_TRUE(GenerateOpenLoop(config).arrival_seconds.empty());
}

// Per-phase mean interarrival gap over consecutive windows of `phase` requests.
std::vector<double> PhaseMeanGaps(const std::vector<double>& times, size_t phase) {
  std::vector<double> gaps;
  for (size_t start = 0; start + phase <= times.size(); start += phase) {
    double lo = start == 0 ? 0.0 : times[start - 1];
    gaps.push_back((times[start + phase - 1] - lo) / static_cast<double>(phase));
  }
  return gaps;
}

TEST(WorkloadTest, BurstyArrivalsAlternateFastAndSlowPhases) {
  WorkloadConfig config;
  config.app = "motd";
  config.kind = WorkloadKind::kMixed;
  config.requests = 512;
  config.seed = 8;
  config.arrival = ArrivalPattern::kBursty;
  config.mean_rate = 1000.0;
  config.burst_factor = 8.0;
  config.phase_requests = 64;
  OpenLoopWorkload wl = GenerateOpenLoop(config);
  std::vector<double> gaps = PhaseMeanGaps(wl.arrival_seconds, 64);
  ASSERT_EQ(gaps.size(), 8u);
  // Even phases are bursts (rate*8), odd phases troughs (rate/8): a 64x rate
  // ratio, asserted with a slack factor of ~4 for exponential noise.
  for (size_t i = 0; i + 1 < gaps.size(); i += 2) {
    EXPECT_LT(gaps[i] * 16, gaps[i + 1])
        << "phase " << i << " should be much faster than phase " << i + 1;
  }
}

TEST(WorkloadTest, DiurnalArrivalsSwingAroundTheMean) {
  WorkloadConfig config;
  config.app = "motd";
  config.kind = WorkloadKind::kMixed;
  config.requests = 512;
  config.seed = 8;
  config.arrival = ArrivalPattern::kDiurnal;
  config.mean_rate = 1000.0;
  config.phase_requests = 64;  // One "day" = 256 requests.
  OpenLoopWorkload wl = GenerateOpenLoop(config);
  std::vector<double> gaps = PhaseMeanGaps(wl.arrival_seconds, 64);
  ASSERT_EQ(gaps.size(), 8u);
  double slowest = *std::max_element(gaps.begin(), gaps.end());
  double fastest = *std::min_element(gaps.begin(), gaps.end());
  // The sinusoid swings the rate between 1.8x and 0.2x the mean; the phase
  // means must clearly separate even with exponential noise.
  EXPECT_GT(slowest, 2.5 * fastest);
}

TEST(WorkloadTest, MixedAppsEnvelopesComposeAllFourApps) {
  WorkloadConfig config;
  config.app = "mixed";
  config.kind = WorkloadKind::kMixedApps;
  config.requests = 800;
  config.seed = 9;
  config.connections = 10;
  std::vector<Value> reqs = GenerateWorkload(config);
  ASSERT_EQ(reqs.size(), 800u);
  std::map<std::string, int> per_app;
  for (const Value& r : reqs) {
    std::string app = r.Field("app").AsString();
    ASSERT_TRUE(r.Field("req").is_map()) << r.ToString();
    ++per_app[app];
  }
  ASSERT_EQ(per_app.size(), 4u);
  // Shares: auction 40%, stacks 25%, wiki 20%, motd 15% (exact by
  // construction — the interleaving is a lottery but the totals are fixed).
  EXPECT_EQ(per_app["auction"], 320);
  EXPECT_EQ(per_app["stacks"], 200);
  EXPECT_EQ(per_app["wiki"], 160);
  EXPECT_EQ(per_app["motd"], 120);
  EXPECT_EQ(reqs, GenerateWorkload(config));
}

TEST(SequentialBaselineTest, MatchesSequentialServerExactly) {
  AppSpec app = MakeStacksApp();
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 60;
  ServerConfig config;
  config.mode = CollectMode::kOff;
  config.concurrency = 1;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));
  AppSpec fresh = MakeStacksApp();
  SequentialReplayResult replay = SequentialReplay(fresh, run.trace);
  EXPECT_EQ(replay.requests, 60u);
  EXPECT_TRUE(replay.outputs_match());
}

TEST(SequentialBaselineTest, ConcurrentScheduleMayDiverge) {
  // Under real concurrency the sequential baseline re-executes a different
  // interleaving; outputs can differ (which is why the paper only uses its
  // running time). This documents that behaviour rather than asserting it.
  AppSpec app = MakeWikiApp();
  WorkloadConfig wl;
  wl.app = "wiki";
  wl.kind = WorkloadKind::kWikiMix;
  wl.requests = 80;
  wl.connections = 8;
  ServerConfig config;
  config.mode = CollectMode::kOff;
  config.concurrency = 8;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));
  AppSpec fresh = MakeWikiApp();
  SequentialReplayResult replay = SequentialReplay(fresh, run.trace);
  EXPECT_EQ(replay.requests, 80u);
  // No assertion on mismatches: both zero and nonzero are legitimate.
}

}  // namespace
}  // namespace karousos
