#include "src/workload/workload.h"

#include <gtest/gtest.h>

#include "src/baseline/sequential.h"
#include "src/server/server.h"
#include "src/apps/app.h"

namespace karousos {
namespace {

TEST(WorkloadTest, DeterministicForFixedSeed) {
  WorkloadConfig config;
  config.app = "stacks";
  config.kind = WorkloadKind::kMixed;
  config.requests = 100;
  config.seed = 5;
  std::vector<Value> seed5 = GenerateWorkload(config);
  EXPECT_EQ(seed5, GenerateWorkload(config));
  config.seed = 6;
  EXPECT_NE(seed5, GenerateWorkload(config));
}

TEST(WorkloadTest, MotdMixRatiosApproximate) {
  WorkloadConfig config;
  config.app = "motd";
  config.kind = WorkloadKind::kWriteHeavy;
  config.requests = 1000;
  std::vector<Value> reqs = GenerateWorkload(config);
  int writes = 0;
  for (const Value& r : reqs) {
    if (r.Field("op") == Value("set")) {
      ++writes;
    }
  }
  EXPECT_GT(writes, 850);
  EXPECT_LT(writes, 950);
}

TEST(WorkloadTest, WikiMixRatiosApproximate) {
  WorkloadConfig config;
  config.app = "wiki";
  config.kind = WorkloadKind::kWikiMix;
  config.requests = 1000;
  config.connections = 16;
  std::vector<Value> reqs = GenerateWorkload(config);
  int creates = 0;
  int comments = 0;
  int renders = 0;
  for (const Value& r : reqs) {
    std::string op = r.Field("op").AsString();
    creates += op == "create_page";
    comments += op == "create_comment";
    renders += op == "render";
    EXPECT_LT(r.Field("conn").AsInt(), 16);
  }
  EXPECT_NEAR(creates, 250, 60);
  EXPECT_NEAR(comments, 150, 60);
  EXPECT_NEAR(renders, 600, 80);
}

TEST(WorkloadTest, StacksSubmitsAreMostlyRepeats) {
  WorkloadConfig config;
  config.app = "stacks";
  config.kind = WorkloadKind::kWriteHeavy;
  config.requests = 1000;
  std::vector<Value> reqs = GenerateWorkload(config);
  std::set<std::string> unique;
  int submits = 0;
  for (const Value& r : reqs) {
    if (r.Field("op") == Value("submit")) {
      ++submits;
      unique.insert(r.Field("dump").AsString());
    }
  }
  ASSERT_GT(submits, 800);
  // ~10% of submits introduce a new dump.
  EXPECT_LT(unique.size(), static_cast<size_t>(submits) / 4);
  EXPECT_GT(unique.size(), static_cast<size_t>(submits) / 25);
}

TEST(SequentialBaselineTest, MatchesSequentialServerExactly) {
  AppSpec app = MakeStacksApp();
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 60;
  ServerConfig config;
  config.mode = CollectMode::kOff;
  config.concurrency = 1;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));
  AppSpec fresh = MakeStacksApp();
  SequentialReplayResult replay = SequentialReplay(fresh, run.trace);
  EXPECT_EQ(replay.requests, 60u);
  EXPECT_TRUE(replay.outputs_match());
}

TEST(SequentialBaselineTest, ConcurrentScheduleMayDiverge) {
  // Under real concurrency the sequential baseline re-executes a different
  // interleaving; outputs can differ (which is why the paper only uses its
  // running time). This documents that behaviour rather than asserting it.
  AppSpec app = MakeWikiApp();
  WorkloadConfig wl;
  wl.app = "wiki";
  wl.kind = WorkloadKind::kWikiMix;
  wl.requests = 80;
  wl.connections = 8;
  ServerConfig config;
  config.mode = CollectMode::kOff;
  config.concurrency = 8;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));
  AppSpec fresh = MakeWikiApp();
  SequentialReplayResult replay = SequentialReplay(fresh, run.trace);
  EXPECT_EQ(replay.requests, 80u);
  // No assertion on mismatches: both zero and nonzero are legitimate.
}

}  // namespace
}  // namespace karousos
