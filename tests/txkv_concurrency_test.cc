// Interleaved multi-transaction scenarios for the transactional KV store:
// lock lifetimes, abort visibility, binlog contents under mixed outcomes.
#include <gtest/gtest.h>

#include "src/txkv/store.h"

namespace karousos {
namespace {

TEST(TxKvConcurrencyTest, WriterBlocksReaderUnderSerializable) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  ASSERT_EQ(store.Put(1, 100, 2, "k", Value(1)), TxStatus::kOk);
  store.Begin(2, 200);
  EXPECT_EQ(store.Get(2, 200, "k").status, TxStatus::kConflict);
  store.Commit(1, 100);
  EXPECT_EQ(store.Get(2, 200, "k").status, TxStatus::kOk);
}

TEST(TxKvConcurrencyTest, AbortedWriterUnblocksImmediately) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("dirty"));
  store.Begin(2, 200);
  EXPECT_EQ(store.Get(2, 200, "k").status, TxStatus::kConflict);
  store.Abort(1, 100);
  KvGetResult got = store.Get(2, 200, "k");
  EXPECT_EQ(got.status, TxStatus::kOk);
  EXPECT_FALSE(got.found);  // Nothing ever committed.
}

TEST(TxKvConcurrencyTest, ReadUncommittedSeesThenUnseesAbortedWrite) {
  TxKvStore store(IsolationLevel::kReadUncommitted);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("phantom"));
  store.Begin(2, 200);
  EXPECT_EQ(store.Get(2, 200, "k").value, Value("phantom"));
  store.Abort(1, 100);
  EXPECT_FALSE(store.Get(2, 200, "k").found);
}

TEST(TxKvConcurrencyTest, AbortedTransactionsLeaveNoBinlogEntries) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "a", Value(1));
  store.Commit(1, 100);
  store.Begin(2, 200);
  store.Put(2, 200, 2, "b", Value(2));
  store.Abort(2, 200);
  store.Begin(3, 300);
  store.Put(3, 300, 2, "c", Value(3));
  store.Commit(3, 300);
  ASSERT_EQ(store.binlog().size(), 2u);
  EXPECT_EQ(store.binlog()[0].rid, 1u);
  EXPECT_EQ(store.binlog()[1].rid, 3u);
}

TEST(TxKvConcurrencyTest, TwoKeysNoConflict) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Begin(2, 200);
  EXPECT_EQ(store.Put(1, 100, 2, "a", Value(1)), TxStatus::kOk);
  EXPECT_EQ(store.Put(2, 200, 2, "b", Value(2)), TxStatus::kOk);
  EXPECT_EQ(store.Commit(1, 100), TxStatus::kOk);
  EXPECT_EQ(store.Commit(2, 200), TxStatus::kOk);
  // Binlog order follows commit order.
  ASSERT_EQ(store.binlog().size(), 2u);
  EXPECT_EQ(store.binlog()[0].rid, 1u);
}

TEST(TxKvConcurrencyTest, ReadCommittedWritersStillExcludeEachOther) {
  TxKvStore store(IsolationLevel::kReadCommitted);
  store.Begin(1, 100);
  ASSERT_EQ(store.Put(1, 100, 2, "k", Value(1)), TxStatus::kOk);
  store.Begin(2, 200);
  EXPECT_EQ(store.Put(2, 200, 2, "k", Value(2)), TxStatus::kConflict);
}

TEST(TxKvConcurrencyTest, OwnReadsSeeLatestOwnWriteAcrossUpdates) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value(1));
  store.Put(1, 100, 3, "k", Value(2));
  KvGetResult got = store.Get(1, 100, "k");
  EXPECT_EQ(got.value, Value(2));
  EXPECT_EQ(got.dictating_write, (TxOpRef{1, 100, 3}));
}

TEST(TxKvConcurrencyTest, DictatingWriteSurvivesUnrelatedCommits) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("v1"));
  store.Commit(1, 100);
  store.Begin(2, 200);
  store.Put(2, 200, 2, "other", Value("x"));
  store.Commit(2, 200);
  store.Begin(3, 300);
  EXPECT_EQ(store.Get(3, 300, "k").dictating_write, (TxOpRef{1, 100, 2}));
}

TEST(TxKvConcurrencyTest, ManyConcurrentReadersThenUpgradeConflicts) {
  TxKvStore store(IsolationLevel::kSerializable);
  for (RequestId rid = 1; rid <= 5; ++rid) {
    store.Begin(rid, rid * 10);
    EXPECT_EQ(store.Get(rid, rid * 10, "k").status, TxStatus::kOk);
  }
  // One of the readers tries to upgrade: blocked by the other four.
  EXPECT_EQ(store.Put(1, 10, 2, "k", Value(1)), TxStatus::kConflict);
  // Once the others finish, the upgrade succeeds.
  for (RequestId rid = 2; rid <= 5; ++rid) {
    store.Commit(rid, rid * 10);
  }
  EXPECT_EQ(store.Put(1, 10, 2, "k", Value(1)), TxStatus::kOk);
}

}  // namespace
}  // namespace karousos
