// Interleaved multi-transaction scenarios for the transactional KV store:
// lock lifetimes, abort visibility, binlog contents under mixed outcomes.
#include <gtest/gtest.h>

#include "src/txkv/store.h"

namespace karousos {
namespace {

TEST(TxKvConcurrencyTest, WriterBlocksReaderUnderSerializable) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  ASSERT_EQ(store.Put(1, 100, 2, "k", Value(1)), TxStatus::kOk);
  store.Begin(2, 200);
  EXPECT_EQ(store.Get(2, 200, "k").status, TxStatus::kConflict);
  store.Commit(1, 100);
  EXPECT_EQ(store.Get(2, 200, "k").status, TxStatus::kOk);
}

TEST(TxKvConcurrencyTest, AbortedWriterUnblocksImmediately) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("dirty"));
  store.Begin(2, 200);
  EXPECT_EQ(store.Get(2, 200, "k").status, TxStatus::kConflict);
  store.Abort(1, 100);
  KvGetResult got = store.Get(2, 200, "k");
  EXPECT_EQ(got.status, TxStatus::kOk);
  EXPECT_FALSE(got.found);  // Nothing ever committed.
}

TEST(TxKvConcurrencyTest, ReadUncommittedSeesThenUnseesAbortedWrite) {
  TxKvStore store(IsolationLevel::kReadUncommitted);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("phantom"));
  store.Begin(2, 200);
  EXPECT_EQ(store.Get(2, 200, "k").value, Value("phantom"));
  store.Abort(1, 100);
  EXPECT_FALSE(store.Get(2, 200, "k").found);
}

TEST(TxKvConcurrencyTest, AbortedTransactionsLeaveNoBinlogEntries) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "a", Value(1));
  store.Commit(1, 100);
  store.Begin(2, 200);
  store.Put(2, 200, 2, "b", Value(2));
  store.Abort(2, 200);
  store.Begin(3, 300);
  store.Put(3, 300, 2, "c", Value(3));
  store.Commit(3, 300);
  ASSERT_EQ(store.binlog().size(), 2u);
  EXPECT_EQ(store.binlog()[0].rid, 1u);
  EXPECT_EQ(store.binlog()[1].rid, 3u);
}

TEST(TxKvConcurrencyTest, TwoKeysNoConflict) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Begin(2, 200);
  EXPECT_EQ(store.Put(1, 100, 2, "a", Value(1)), TxStatus::kOk);
  EXPECT_EQ(store.Put(2, 200, 2, "b", Value(2)), TxStatus::kOk);
  EXPECT_EQ(store.Commit(1, 100), TxStatus::kOk);
  EXPECT_EQ(store.Commit(2, 200), TxStatus::kOk);
  // Binlog order follows commit order.
  ASSERT_EQ(store.binlog().size(), 2u);
  EXPECT_EQ(store.binlog()[0].rid, 1u);
}

TEST(TxKvConcurrencyTest, ReadCommittedWritersStillExcludeEachOther) {
  TxKvStore store(IsolationLevel::kReadCommitted);
  store.Begin(1, 100);
  ASSERT_EQ(store.Put(1, 100, 2, "k", Value(1)), TxStatus::kOk);
  store.Begin(2, 200);
  EXPECT_EQ(store.Put(2, 200, 2, "k", Value(2)), TxStatus::kConflict);
}

TEST(TxKvConcurrencyTest, OwnReadsSeeLatestOwnWriteAcrossUpdates) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value(1));
  store.Put(1, 100, 3, "k", Value(2));
  KvGetResult got = store.Get(1, 100, "k");
  EXPECT_EQ(got.value, Value(2));
  EXPECT_EQ(got.dictating_write, (TxOpRef{1, 100, 3}));
}

TEST(TxKvConcurrencyTest, DictatingWriteSurvivesUnrelatedCommits) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("v1"));
  store.Commit(1, 100);
  store.Begin(2, 200);
  store.Put(2, 200, 2, "other", Value("x"));
  store.Commit(2, 200);
  store.Begin(3, 300);
  EXPECT_EQ(store.Get(3, 300, "k").dictating_write, (TxOpRef{1, 100, 2}));
}

TEST(TxKvConcurrencyTest, ManyConcurrentReadersThenUpgradeConflicts) {
  TxKvStore store(IsolationLevel::kSerializable);
  for (RequestId rid = 1; rid <= 5; ++rid) {
    store.Begin(rid, rid * 10);
    EXPECT_EQ(store.Get(rid, rid * 10, "k").status, TxStatus::kOk);
  }
  // One of the readers tries to upgrade: blocked by the other four.
  EXPECT_EQ(store.Put(1, 10, 2, "k", Value(1)), TxStatus::kConflict);
  // Once the others finish, the upgrade succeeds.
  for (RequestId rid = 2; rid <= 5; ++rid) {
    store.Commit(rid, rid * 10);
  }
  EXPECT_EQ(store.Put(1, 10, 2, "k", Value(1)), TxStatus::kOk);
}

// --- Hot-key bid races: deterministic interleavings per isolation level ----
//
// These mirror the auction app's bid loop at the store level: each "bidder"
// runs Begin → Get(hot) → Put(hot, max) → Commit, aborting and retrying from
// scratch whenever the no-wait store reports a conflict. The scripts are
// lock-step round-robin, so every retry count is a deterministic function of
// the isolation level's locking rules.

struct Bidder {
  int64_t amount;
  // 0 = begin, 1 = get, 2 = put, 3 = commit, 4 = done.
  int phase = 0;
  uint64_t attempt = 0;
  int64_t seen = 0;
  size_t retries = 0;
};

// Round-robin one op per bidder per turn until all commit; *total_retries
// counts the aborts forced by conflicts. (void so ASSERT_* may be used.)
void RunBidRace(TxKvStore& store, std::vector<Bidder>& bidders, const char* key,
                size_t* total_retries) {
  size_t done = 0;
  size_t guard = 0;
  while (done < bidders.size()) {
    ASSERT_LT(++guard, 1000u) << "bid race failed to converge";
    for (size_t i = 0; i < bidders.size(); ++i) {
      Bidder& b = bidders[i];
      RequestId rid = static_cast<RequestId>(i + 1);
      uint64_t tid = (i + 1) * 1000 + b.attempt;
      auto restart = [&] {
        store.Abort(rid, tid);
        ++b.attempt;
        ++b.retries;
        ++*total_retries;
        b.phase = 0;
      };
      switch (b.phase) {
        case 0:
          store.Begin(rid, tid);
          b.phase = 1;
          break;
        case 1: {
          KvGetResult got = store.Get(rid, tid, key);
          if (got.status == TxStatus::kConflict) {
            restart();
            break;
          }
          b.seen = got.found ? got.value.IntOr(0) : 0;
          b.phase = 2;
          break;
        }
        case 2: {
          if (b.amount <= b.seen) {
            b.phase = 3;  // Trailing bid: nothing to write.
            break;
          }
          if (store.Put(rid, tid, 2, key, Value(b.amount)) == TxStatus::kConflict) {
            restart();
            break;
          }
          b.phase = 3;
          break;
        }
        case 3:
          if (store.Commit(rid, tid) == TxStatus::kConflict) {
            restart();
            break;
          }
          b.phase = 4;
          ++done;
          break;
        default:
          break;
      }
    }
  }
}

size_t BidRace(TxKvStore& store, std::vector<Bidder>& bidders, const char* key) {
  size_t retries = 0;
  RunBidRace(store, bidders, key, &retries);
  return retries;
}

int64_t CommittedValue(TxKvStore& store, const char* key) {
  store.Begin(99, 9900);
  KvGetResult got = store.Get(99, 9900, key);
  EXPECT_EQ(got.status, TxStatus::kOk);
  store.Commit(99, 9900);
  return got.found ? got.value.IntOr(0) : -1;
}

TEST(TxKvHotKeyRaceTest, AllLevelsConvergeToTheMaxWhenRetriesRecompute) {
  // The retry loop re-reads before re-deciding, so every level converges to
  // the same final value; what differs is how much retrying it took.
  size_t retries_by_level[3] = {};
  size_t idx = 0;
  for (IsolationLevel iso : {IsolationLevel::kSerializable, IsolationLevel::kReadCommitted,
                             IsolationLevel::kReadUncommitted}) {
    TxKvStore store(iso);
    std::vector<Bidder> bidders = {{300}, {500}, {400}, {450}};
    retries_by_level[idx++] = BidRace(store, bidders, "item:0");
    EXPECT_EQ(CommittedValue(store, "item:0"), 500)
        << "level " << static_cast<int>(iso);
  }
  // The lock-step script makes the retry counts a deterministic fingerprint
  // of each level's locking rules. Serializable conflicts at the S→X upgrade
  // (every sibling holds a read lock); read committed conflicts only on
  // writer-writer exclusion — but because its gets never block, bidders keep
  // reaching the contended put and aborting there, which costs one extra
  // retry in this schedule. Read uncommitted additionally reads dirty
  // values, so trailing bidders observe the in-flight leader and skip their
  // put entirely.
  EXPECT_EQ(retries_by_level[0], 4u);  // serializable
  EXPECT_EQ(retries_by_level[1], 5u);  // read committed
  EXPECT_EQ(retries_by_level[2], 5u);  // read uncommitted
}

TEST(TxKvHotKeyRaceTest, SerializablePreventsTheLostUpdateReadCommittedAllows) {
  // The fixed anomaly script: both bidders read high=0, the big bid commits,
  // then the small bid — whose precondition is stale — writes over it.
  //
  // Read committed: gets take no locks, so every step succeeds and the final
  // value is the SMALL bid: B1's update is lost.
  {
    TxKvStore store(IsolationLevel::kReadCommitted);
    store.Begin(1, 100);
    store.Begin(2, 200);
    EXPECT_EQ(store.Get(1, 100, "item:0").status, TxStatus::kOk);
    EXPECT_EQ(store.Get(2, 200, "item:0").status, TxStatus::kOk);
    ASSERT_EQ(store.Put(1, 100, 2, "item:0", Value(500)), TxStatus::kOk);
    ASSERT_EQ(store.Commit(1, 100), TxStatus::kOk);
    // B2 still believes high = 0, so 300 "leads"; the lock is free again.
    ASSERT_EQ(store.Put(2, 200, 2, "item:0", Value(300)), TxStatus::kOk);
    ASSERT_EQ(store.Commit(2, 200), TxStatus::kOk);
    EXPECT_EQ(CommittedValue(store, "item:0"), 300) << "the lost update";
  }
  // Serializable: the same script cannot run — B2's shared lock from its get
  // makes B1's upgrade conflict, so no committed state is ever overwritten
  // on a stale precondition.
  {
    TxKvStore store(IsolationLevel::kSerializable);
    store.Begin(1, 100);
    store.Begin(2, 200);
    EXPECT_EQ(store.Get(1, 100, "item:0").status, TxStatus::kOk);
    EXPECT_EQ(store.Get(2, 200, "item:0").status, TxStatus::kOk);
    EXPECT_EQ(store.Put(1, 100, 2, "item:0", Value(500)), TxStatus::kConflict);
    store.Abort(1, 100);
    ASSERT_EQ(store.Put(2, 200, 2, "item:0", Value(300)), TxStatus::kOk);
    ASSERT_EQ(store.Commit(2, 200), TxStatus::kOk);
    // B1 retries with a fresh read: 500 > 300 stands, nothing is lost.
    store.Begin(1, 101);
    KvGetResult got = store.Get(1, 101, "item:0");
    ASSERT_EQ(got.status, TxStatus::kOk);
    EXPECT_EQ(got.value, Value(300));
    ASSERT_EQ(store.Put(1, 101, 2, "item:0", Value(500)), TxStatus::kOk);
    ASSERT_EQ(store.Commit(1, 101), TxStatus::kOk);
    EXPECT_EQ(CommittedValue(store, "item:0"), 500);
  }
}

TEST(TxKvHotKeyRaceTest, ReadUncommittedBidderChasesAPhantomLeader) {
  // Under read uncommitted a bidder can observe an in-flight bid, decide it
  // is outbid, and walk away — then the "leader" aborts, and the auction
  // ends with no bid at all. Both reads succeed; the anomaly is in the
  // values, which is why only the audit-level isolation check catches it.
  TxKvStore store(IsolationLevel::kReadUncommitted);
  store.Begin(1, 100);
  ASSERT_EQ(store.Put(1, 100, 2, "item:0", Value(999)), TxStatus::kOk);
  store.Begin(2, 200);
  KvGetResult dirty = store.Get(2, 200, "item:0");
  ASSERT_EQ(dirty.status, TxStatus::kOk);
  EXPECT_EQ(dirty.value, Value(999)) << "dirty read of the in-flight bid";
  // B2's 300 trails the phantom 999: no put.
  ASSERT_EQ(store.Commit(2, 200), TxStatus::kOk);
  store.Abort(1, 100);
  EXPECT_EQ(CommittedValue(store, "item:0"), -1) << "no bid committed at all";

  // The same schedule under read committed: B2 sees the committed state
  // (nothing), bids, and wins.
  TxKvStore rc(IsolationLevel::kReadCommitted);
  rc.Begin(1, 100);
  ASSERT_EQ(rc.Put(1, 100, 2, "item:0", Value(999)), TxStatus::kOk);
  rc.Begin(2, 200);
  KvGetResult clean = rc.Get(2, 200, "item:0");
  ASSERT_EQ(clean.status, TxStatus::kOk);
  EXPECT_FALSE(clean.found);
  // The leader aborts (writer-writer exclusion would block B2's put while
  // B1's X lock is live — that guard exists at every level); afterwards B2's
  // 300 leads the truly-empty board and wins.
  rc.Abort(1, 100);
  ASSERT_EQ(rc.Put(2, 200, 2, "item:0", Value(300)), TxStatus::kOk);
  ASSERT_EQ(rc.Commit(2, 200), TxStatus::kOk);
  EXPECT_EQ(CommittedValue(rc, "item:0"), 300);
}

}  // namespace
}  // namespace karousos
