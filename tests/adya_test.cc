// Adya isolation testing (§4.4): hand-built anomaly histories must be
// rejected at the appropriate levels, and histories the txkv store actually
// produces must pass at the store's configured level (a property test tying
// the substrate and the checker together).
#include "src/adya/checker.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace karousos {
namespace {

// Builders for compact history construction.
TxOperation Start() { return TxOperation{TxOpType::kTxStart, 1, 1, "", Value(), kNilTxOp, false}; }
TxOperation Commit() {
  return TxOperation{TxOpType::kTxCommit, 1, 9, "", Value(), kNilTxOp, false};
}
TxOperation Abort() { return TxOperation{TxOpType::kTxAbort, 1, 9, "", Value(), kNilTxOp, false}; }
TxOperation Put(std::string key, Value v, OpNum opnum) {
  return TxOperation{TxOpType::kPut, 1, opnum, std::move(key), std::move(v), kNilTxOp, false};
}
TxOperation Get(std::string key, TxOpRef from, OpNum opnum) {
  return TxOperation{TxOpType::kGet, 1, opnum, std::move(key), Value(), from, true};
}

TEST(AdyaTest, EmptyHistoryPassesAllLevels) {
  for (IsolationLevel level : {IsolationLevel::kSerializable, IsolationLevel::kReadCommitted,
                               IsolationLevel::kReadUncommitted}) {
    EXPECT_TRUE(CheckHistory(level, {}, {}).ok);
  }
}

TEST(AdyaTest, SimpleSerialHistoryPasses) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Put("k", Value(1), 2), Commit()};
  logs[{2, 20}] = {Start(), Get("k", TxOpRef{1, 10, 2}, 2), Put("k", Value(2), 3), Commit()};
  WriteOrder order = {TxOpRef{1, 10, 2}, TxOpRef{2, 20, 3}};
  EXPECT_TRUE(CheckHistory(IsolationLevel::kSerializable, logs, order).ok);
}

TEST(AdyaTest, LogWithoutTxStartRejected) {
  TransactionLogs logs;
  logs[{1, 10}] = {Put("k", Value(1), 1), Commit()};
  EXPECT_FALSE(AnalyzeLogs(logs).ok);
}

TEST(AdyaTest, OperationsAfterCommitRejected) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Commit(), Put("k", Value(1), 3)};
  EXPECT_FALSE(AnalyzeLogs(logs).ok);
}

TEST(AdyaTest, GetWithDanglingDictatingWriteRejected) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Get("k", TxOpRef{5, 55, 2}, 2), Commit()};
  EXPECT_FALSE(AnalyzeLogs(logs).ok);
}

TEST(AdyaTest, GetWithKeyMismatchRejected) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Put("other", Value(1), 2), Commit()};
  logs[{2, 20}] = {Start(), Get("k", TxOpRef{1, 10, 2}, 2), Commit()};
  EXPECT_FALSE(AnalyzeLogs(logs).ok);
}

TEST(AdyaTest, TransactionMustObserveOwnWrites) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Put("k", Value(1), 2), Commit()};
  logs[{2, 20}] = {Start(), Put("k", Value(2), 2), Get("k", TxOpRef{1, 10, 2}, 3), Commit()};
  HistoryAnalysis analysis = AnalyzeLogs(logs);
  EXPECT_FALSE(analysis.ok);
  EXPECT_NE(analysis.reason.find("own"), std::string::npos);
}

TEST(AdyaTest, WriteOrderLengthMismatchRejected) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Put("k", Value(1), 2), Commit()};
  EXPECT_FALSE(CheckHistory(IsolationLevel::kReadUncommitted, logs, {}).ok);
}

TEST(AdyaTest, WriteOrderWithNonFinalModificationRejected) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Put("k", Value(1), 2), Put("k", Value(2), 3), Commit()};
  // The order lists the first PUT, which is not the final modification.
  WriteOrder order = {TxOpRef{1, 10, 2}};
  EXPECT_FALSE(CheckHistory(IsolationLevel::kReadUncommitted, logs, order).ok);
  WriteOrder good = {TxOpRef{1, 10, 3}};
  EXPECT_TRUE(CheckHistory(IsolationLevel::kReadUncommitted, logs, good).ok);
}

TEST(AdyaTest, G1aAbortedReadRejectedAtReadCommitted) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Put("k", Value(1), 2), Abort()};
  logs[{2, 20}] = {Start(), Get("k", TxOpRef{1, 10, 2}, 2), Commit()};
  WriteOrder order = {};
  EXPECT_FALSE(CheckHistory(IsolationLevel::kReadCommitted, logs, order).ok);
  // Read-uncommitted tolerates it (G1a is not proscribed there).
  EXPECT_TRUE(CheckHistory(IsolationLevel::kReadUncommitted, logs, order).ok);
}

TEST(AdyaTest, G1bIntermediateReadRejectedAtReadCommitted) {
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Put("k", Value(1), 2), Put("k", Value(2), 3), Commit()};
  logs[{2, 20}] = {Start(), Get("k", TxOpRef{1, 10, 2}, 2), Commit()};  // Reads non-final PUT.
  WriteOrder order = {TxOpRef{1, 10, 3}};
  EXPECT_FALSE(CheckHistory(IsolationLevel::kReadCommitted, logs, order).ok);
  EXPECT_TRUE(CheckHistory(IsolationLevel::kReadUncommitted, logs, order).ok);
}

TEST(AdyaTest, G0WriteCycleRejectedEverywhere) {
  // T1 and T2 interleave writes on two keys: w-w edges in both directions.
  TransactionLogs logs;
  logs[{1, 10}] = {Start(), Put("a", Value(1), 2), Put("b", Value(1), 3), Commit()};
  logs[{2, 20}] = {Start(), Put("b", Value(2), 2), Put("a", Value(2), 3), Commit()};
  // a: T1 then T2; b: T2 then T1 -> cycle of write-dependencies.
  WriteOrder order = {TxOpRef{1, 10, 2}, TxOpRef{2, 20, 2}, TxOpRef{2, 20, 3},
                      TxOpRef{1, 10, 3}};
  for (IsolationLevel level : {IsolationLevel::kSerializable, IsolationLevel::kReadCommitted,
                               IsolationLevel::kReadUncommitted}) {
    IsolationCheckResult result = CheckHistory(level, logs, order);
    EXPECT_FALSE(result.ok) << IsolationLevelName(level);
    EXPECT_NE(result.reason.find("cycle"), std::string::npos);
  }
}

TEST(AdyaTest, G2WriteSkewRejectedOnlyAtSerializability) {
  // Classic write skew: T1 reads a, writes b; T2 reads b, writes a.
  TransactionLogs logs;
  logs[{0, 5}] = {Start(), Put("a", Value(0), 2), Put("b", Value(0), 3), Commit()};
  logs[{1, 10}] = {Start(), Get("a", TxOpRef{0, 5, 2}, 2), Put("b", Value(1), 3), Commit()};
  logs[{2, 20}] = {Start(), Get("b", TxOpRef{0, 5, 3}, 2), Put("a", Value(2), 3), Commit()};
  WriteOrder order = {TxOpRef{0, 5, 2}, TxOpRef{0, 5, 3}, TxOpRef{1, 10, 3}, TxOpRef{2, 20, 3}};
  EXPECT_FALSE(CheckHistory(IsolationLevel::kSerializable, logs, order).ok);
  EXPECT_TRUE(CheckHistory(IsolationLevel::kReadCommitted, logs, order).ok);
  EXPECT_TRUE(CheckHistory(IsolationLevel::kReadUncommitted, logs, order).ok);
}

TEST(AdyaTest, LostUpdateRejectedAtSerializability) {
  // T1 and T2 both read v0 of k and then write k: one update is lost.
  TransactionLogs logs;
  logs[{0, 5}] = {Start(), Put("k", Value(0), 2), Commit()};
  logs[{1, 10}] = {Start(), Get("k", TxOpRef{0, 5, 2}, 2), Put("k", Value(1), 3), Commit()};
  logs[{2, 20}] = {Start(), Get("k", TxOpRef{0, 5, 2}, 2), Put("k", Value(2), 3), Commit()};
  WriteOrder order = {TxOpRef{0, 5, 2}, TxOpRef{1, 10, 3}, TxOpRef{2, 20, 3}};
  EXPECT_FALSE(CheckHistory(IsolationLevel::kSerializable, logs, order).ok);
  EXPECT_TRUE(CheckHistory(IsolationLevel::kReadCommitted, logs, order).ok);
}

// Property test: whatever history the store actually produces under random
// concurrent transactions must pass the checker at the store's level. This
// runs transactions in interleaved steps, building the same transaction logs
// an honest Karousos server would.
class StoreHistoryProperty : public testing::TestWithParam<IsolationLevel> {};

TEST_P(StoreHistoryProperty, StoreHistoriesPassTheirLevel) {
  const IsolationLevel level = GetParam();
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 31 + static_cast<uint64_t>(level));
    TxKvStore store(level);
    TransactionLogs logs;

    struct LiveTxn {
      RequestId rid;
      TxId tid;
      bool dead = false;
    };
    std::vector<LiveTxn> live;
    uint64_t next_id = 1;
    const char* keys[] = {"k1", "k2", "k3"};
    for (int step = 0; step < 300; ++step) {
      if (live.empty() || (live.size() < 4 && rng.Percent(30))) {
        LiveTxn txn{next_id, next_id * 100, false};
        ++next_id;
        ASSERT_EQ(store.Begin(txn.rid, txn.tid), TxStatus::kOk);
        logs[{txn.rid, txn.tid}].push_back(Start());
        live.push_back(txn);
        continue;
      }
      size_t pick = rng.Below(live.size());
      LiveTxn& txn = live[pick];
      TxnKey key{txn.rid, txn.tid};
      uint32_t index = static_cast<uint32_t>(logs[key].size()) + 1;
      uint64_t action = rng.Below(10);
      const std::string k = keys[rng.Below(3)];
      if (action < 4) {
        KvGetResult got = store.Get(txn.rid, txn.tid, k);
        if (got.status == TxStatus::kOk) {
          TxOperation op = got.found ? Get(k, got.dictating_write, 1)
                                     : TxOperation{TxOpType::kGet, 1, 1, k, Value(), kNilTxOp,
                                                   false};
          logs[key].push_back(op);
        } else {
          store.Abort(txn.rid, txn.tid);
          logs[key].push_back(Abort());
          txn.dead = true;
        }
      } else if (action < 8) {
        TxStatus status = store.Put(txn.rid, txn.tid, index, k, Value(static_cast<int64_t>(step)));
        if (status == TxStatus::kOk) {
          logs[key].push_back(Put(k, Value(static_cast<int64_t>(step)), 1));
        } else {
          store.Abort(txn.rid, txn.tid);
          logs[key].push_back(Abort());
          txn.dead = true;
        }
      } else if (action < 9) {
        store.Abort(txn.rid, txn.tid);
        logs[key].push_back(Abort());
        txn.dead = true;
      } else {
        ASSERT_EQ(store.Commit(txn.rid, txn.tid), TxStatus::kOk);
        logs[key].push_back(Commit());
        txn.dead = true;
      }
      live.erase(std::remove_if(live.begin(), live.end(),
                                [](const LiveTxn& t) { return t.dead; }),
                 live.end());
    }
    for (LiveTxn& txn : live) {
      store.Abort(txn.rid, txn.tid);
      logs[{txn.rid, txn.tid}].push_back(Abort());
    }
    // Fix up opnum bookkeeping: give each op a distinct (hid, opnum) pair.
    for (auto& [txn_key, log] : logs) {
      for (uint32_t i = 0; i < log.size(); ++i) {
        log[i].hid = txn_key.tid;
        log[i].opnum = i + 1;
      }
    }
    IsolationCheckResult result = CheckHistory(level, logs, store.binlog());
    EXPECT_TRUE(result.ok) << "seed " << seed << " at " << IsolationLevelName(level) << ": "
                           << result.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, StoreHistoryProperty,
                         testing::Values(IsolationLevel::kSerializable,
                                         IsolationLevel::kReadCommitted,
                                         IsolationLevel::kReadUncommitted),
                         [](const testing::TestParamInfo<IsolationLevel>& info) {
                           switch (info.param) {
                             case IsolationLevel::kSerializable:
                               return std::string("serializable");
                             case IsolationLevel::kReadCommitted:
                               return std::string("read_committed");
                             default:
                               return std::string("read_uncommitted");
                           }
                         });

}  // namespace
}  // namespace karousos
