// Transactional KV store: isolation semantics, no-wait conflicts, last-writer
// tracking, and the binlog write order.
#include "src/txkv/store.h"

#include <gtest/gtest.h>

namespace karousos {
namespace {

TEST(TxKvTest, BasicPutGetCommit) {
  TxKvStore store(IsolationLevel::kSerializable);
  ASSERT_EQ(store.Begin(1, 100), TxStatus::kOk);
  EXPECT_EQ(store.Put(1, 100, 2, "k", Value("v")), TxStatus::kOk);
  KvGetResult own = store.Get(1, 100, "k");
  EXPECT_TRUE(own.found);
  EXPECT_EQ(own.value, Value("v"));
  EXPECT_EQ(own.dictating_write, (TxOpRef{1, 100, 2}));
  ASSERT_EQ(store.Commit(1, 100), TxStatus::kOk);
  EXPECT_EQ(*store.CommittedValue("k"), Value("v"));
  ASSERT_EQ(store.binlog().size(), 1u);
  EXPECT_EQ(store.binlog()[0], (TxOpRef{1, 100, 2}));
}

TEST(TxKvTest, TidReuseRejected) {
  TxKvStore store(IsolationLevel::kSerializable);
  ASSERT_EQ(store.Begin(1, 100), TxStatus::kOk);
  ASSERT_EQ(store.Commit(1, 100), TxStatus::kOk);
  EXPECT_EQ(store.Begin(1, 100), TxStatus::kInvalidTxn);
}

TEST(TxKvTest, AbortRevertsDirtyState) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("committed"));
  store.Commit(1, 100);
  store.Begin(2, 200);
  store.Put(2, 200, 2, "k", Value("doomed"));
  store.Abort(2, 200);
  EXPECT_EQ(*store.CommittedValue("k"), Value("committed"));
  // The row lock is released: a new writer succeeds.
  store.Begin(3, 300);
  EXPECT_EQ(store.Put(3, 300, 2, "k", Value("next")), TxStatus::kOk);
}

TEST(TxKvTest, SerializableWriteWriteConflictIsNoWait) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Begin(2, 200);
  ASSERT_EQ(store.Put(1, 100, 2, "k", Value(1)), TxStatus::kOk);
  EXPECT_EQ(store.Put(2, 200, 2, "k", Value(2)), TxStatus::kConflict);
}

TEST(TxKvTest, SerializableReadBlocksWriter) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Begin(2, 200);
  store.Get(1, 100, "k");  // S lock, even on an absent row.
  EXPECT_EQ(store.Put(2, 200, 2, "k", Value(2)), TxStatus::kConflict);
  store.Commit(1, 100);
  EXPECT_EQ(store.Put(2, 200, 2, "k", Value(2)), TxStatus::kOk);
}

TEST(TxKvTest, SerializableSharedReadersCoexist) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Begin(2, 200);
  EXPECT_EQ(store.Get(1, 100, "k").status, TxStatus::kOk);
  EXPECT_EQ(store.Get(2, 200, "k").status, TxStatus::kOk);
}

TEST(TxKvTest, SerializableLockUpgradeForSoleReader) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Get(1, 100, "k");
  EXPECT_EQ(store.Put(1, 100, 2, "k", Value(1)), TxStatus::kOk);
}

TEST(TxKvTest, ReadCommittedSeesOnlyCommittedData) {
  TxKvStore store(IsolationLevel::kReadCommitted);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("dirty"));
  store.Begin(2, 200);
  KvGetResult got = store.Get(2, 200, "k");
  EXPECT_EQ(got.status, TxStatus::kOk);  // Readers never block.
  EXPECT_FALSE(got.found);               // Nothing committed yet.
  store.Commit(1, 100);
  got = store.Get(2, 200, "k");
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.value, Value("dirty"));
}

TEST(TxKvTest, ReadUncommittedSeesDirtyWrites) {
  TxKvStore store(IsolationLevel::kReadUncommitted);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("dirty"));
  store.Begin(2, 200);
  KvGetResult got = store.Get(2, 200, "k");
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.value, Value("dirty"));
  // The dictating write names the uncommitted writer — exactly the G1a
  // evidence Adya's checks consume.
  EXPECT_EQ(got.dictating_write, (TxOpRef{1, 100, 2}));
}

TEST(TxKvTest, BinlogRecordsOnlyFinalModificationsInCommitOrder) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "a", Value(1));
  store.Put(1, 100, 3, "a", Value(2));  // Overwrites own write: only index 3 is final.
  store.Put(1, 100, 4, "b", Value(3));
  store.Commit(1, 100);
  store.Begin(2, 200);
  store.Put(2, 200, 2, "a", Value(4));
  store.Commit(2, 200);
  ASSERT_EQ(store.binlog().size(), 3u);
  EXPECT_EQ(store.binlog()[0], (TxOpRef{1, 100, 3}));
  EXPECT_EQ(store.binlog()[1], (TxOpRef{1, 100, 4}));
  EXPECT_EQ(store.binlog()[2], (TxOpRef{2, 200, 2}));
}

TEST(TxKvTest, GetReportsDictatingWriteAcrossTransactions) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value("v1"));
  store.Commit(1, 100);
  store.Begin(2, 200);
  KvGetResult got = store.Get(2, 200, "k");
  EXPECT_EQ(got.dictating_write, (TxOpRef{1, 100, 2}));
}

TEST(TxKvTest, OperationsOnUnknownTransactionFail) {
  TxKvStore store(IsolationLevel::kSerializable);
  EXPECT_EQ(store.Get(1, 1, "k").status, TxStatus::kInvalidTxn);
  EXPECT_EQ(store.Put(1, 1, 1, "k", Value(1)), TxStatus::kInvalidTxn);
  EXPECT_EQ(store.Commit(1, 1), TxStatus::kInvalidTxn);
  store.Abort(1, 1);  // No-op, must not crash.
}

TEST(TxKvTest, ResetClearsEverything) {
  TxKvStore store(IsolationLevel::kSerializable);
  store.Begin(1, 100);
  store.Put(1, 100, 2, "k", Value(1));
  store.Commit(1, 100);
  store.Reset();
  EXPECT_EQ(store.binlog().size(), 0u);
  EXPECT_FALSE(store.CommittedValue("k").has_value());
  EXPECT_EQ(store.Begin(1, 100), TxStatus::kOk);  // Tid reusable after reset.
}

}  // namespace
}  // namespace karousos
