// End-to-end wire-mode equivalence: the network front-end's per-worker
// record shards must carry exactly the audit weight of in-process serving.
//
//   * Batch mode: each shard's trace and advice are byte-identical to an
//     in-process Server(seed + w).Run(shard_inputs) oracle, across apps and
//     worker counts — the strongest form of the wire/in-process contract.
//   * Live mode: the schedule depends on arrival timing, so the contract is
//     the audit verdict quadruple (accepted, reason, rule, diagnostics).
//   * Tamper differential: forging a response in a wire shard rejects with
//     the same rule as the identical forgery of the in-process oracle.
//   * Slow-client flow control: a peer that floods requests and never
//     drains responses keeps per-connection resident bytes bounded near the
//     high watermark instead of ballooning with the backlog.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/audit/audit.h"
#include "src/common/serde.h"
#include "src/net/client.h"
#include "src/net/wire_server.h"
#include "src/server/server.h"
#include "src/workload/wire_load.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

std::string UniqueSocketPath(const std::string& tag) {
  static int counter = 0;
  return "unix:/tmp/karousos_net_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(++counter) + ".sock";
}

AppSpec MakeTestApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  return MakeAuctionApp();
}

std::vector<Value> MakeInputs(const std::string& app, size_t requests, uint64_t seed) {
  WorkloadConfig wl;
  wl.app = app;
  wl.kind = app == "auction" ? WorkloadKind::kAuctionMix : WorkloadKind::kMixed;
  wl.requests = requests;
  wl.seed = seed;
  wl.connections = 4;
  return GenerateWorkload(wl);
}

std::vector<uint8_t> TraceBytes(const Trace& trace) {
  ByteWriter out;
  trace.Serialize(&out);
  return out.bytes();
}

std::vector<uint8_t> AdviceBytes(const Advice& advice) {
  ByteWriter out;
  advice.Serialize(&out);
  return out.bytes();
}

// The audit verdict quadruple the wire/in-process contract compares.
struct Verdict {
  bool accepted = false;
  std::string reason;
  std::string rule;
  std::vector<std::string> diagnostics;

  bool operator==(const Verdict& other) const {
    return accepted == other.accepted && reason == other.reason && rule == other.rule &&
           diagnostics == other.diagnostics;
  }
};

Verdict AuditVerdict(const AppSpec& app, const Trace& trace, const Advice& advice) {
  AuditResult result = AuditOnly(app, trace, advice, IsolationLevel::kSerializable);
  Verdict v;
  v.accepted = result.accepted;
  v.reason = result.reason;
  v.rule = result.rule;
  for (const LintDiagnostic& d : result.diagnostics) {
    v.diagnostics.push_back(d.Format());
  }
  return v;
}

// Worker w's shard under round-robin connection assignment with one client
// connection per worker: the strided subsequence inputs[w::workers].
std::vector<Value> ShardInputs(const std::vector<Value>& inputs, size_t workers, size_t w) {
  std::vector<Value> shard;
  for (size_t i = w; i < inputs.size(); i += workers) {
    shard.push_back(inputs[i]);
  }
  return shard;
}

ServerConfig BaseServerConfig() {
  ServerConfig config;
  config.mode = CollectMode::kKarousos;
  config.concurrency = 4;
  config.seed = 21;
  return config;
}

void RunBatchByteEquality(const std::string& app_name, size_t workers) {
  SCOPED_TRACE(app_name + " x " + std::to_string(workers) + " workers");
  AppSpec app = MakeTestApp(app_name);
  const std::vector<Value> inputs = MakeInputs(app_name, 48, 11);

  WireServerConfig wc;
  wc.listen = UniqueSocketPath(app_name);
  wc.workers = workers;
  wc.batch = true;
  wc.server = BaseServerConfig();
  WireServer server(*app.program, wc);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  WireLoadOptions options;
  options.connections = workers;
  options.batch = true;
  WireLoadReport load = RunWireLoad(server.bound_address(), {inputs, {}}, options);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.received, inputs.size());

  WireServerReport report = server.Wait();
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.shards.size(), workers);
  EXPECT_EQ(report.requests, inputs.size());
  EXPECT_EQ(report.protocol_errors, 0u);

  for (size_t w = 0; w < workers; ++w) {
    SCOPED_TRACE("shard " + std::to_string(w));
    const std::vector<Value> shard_inputs = ShardInputs(inputs, workers, w);
    EXPECT_EQ(report.shards[w].requests, shard_inputs.size());

    ServerConfig oracle_config = BaseServerConfig();
    oracle_config.seed = oracle_config.seed + w;
    Server oracle(*app.program, oracle_config);
    ServerRunResult expect = oracle.Run(shard_inputs);

    // The tentpole contract: wire-mode shards are byte-identical to the
    // in-process oracle.
    EXPECT_EQ(TraceBytes(report.shards[w].run.trace), TraceBytes(expect.trace));
    EXPECT_EQ(AdviceBytes(report.shards[w].run.advice), AdviceBytes(expect.advice));

    Verdict wire_verdict = AuditVerdict(app, report.shards[w].run.trace,
                                        report.shards[w].run.advice);
    Verdict oracle_verdict = AuditVerdict(app, expect.trace, expect.advice);
    EXPECT_TRUE(wire_verdict.accepted);
    EXPECT_TRUE(wire_verdict == oracle_verdict);
  }
}

TEST(NetWireTest, BatchShardsMatchOracleMotd) {
  RunBatchByteEquality("motd", 1);
  RunBatchByteEquality("motd", 4);
}

TEST(NetWireTest, BatchShardsMatchOracleStacks) {
  RunBatchByteEquality("stacks", 1);
  RunBatchByteEquality("stacks", 4);
}

TEST(NetWireTest, BatchShardsMatchOracleAuction) {
  RunBatchByteEquality("auction", 1);
  RunBatchByteEquality("auction", 4);
}

TEST(NetWireTest, LiveModeAuditsToOracleVerdict) {
  const size_t workers = 2;
  AppSpec app = MakeTestApp("motd");
  const std::vector<Value> inputs = MakeInputs("motd", 40, 13);

  WireServerConfig wc;
  wc.listen = UniqueSocketPath("live");
  wc.workers = workers;
  wc.batch = false;
  wc.server = BaseServerConfig();
  WireServer server(*app.program, wc);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  WireLoadOptions options;
  options.connections = workers;
  options.batch = false;
  WireLoadReport load = RunWireLoad(server.bound_address(), {inputs, {}}, options);
  ASSERT_TRUE(load.ok) << load.error;

  WireServerReport report = server.Wait();
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.shards.size(), workers);
  EXPECT_EQ(report.requests, inputs.size());
  EXPECT_EQ(report.responses, inputs.size());

  for (size_t w = 0; w < workers; ++w) {
    SCOPED_TRACE("shard " + std::to_string(w));
    ServerConfig oracle_config = BaseServerConfig();
    oracle_config.seed = oracle_config.seed + w;
    Server oracle(*app.program, oracle_config);
    ServerRunResult expect = oracle.Run(ShardInputs(inputs, workers, w));

    Verdict wire_verdict = AuditVerdict(app, report.shards[w].run.trace,
                                        report.shards[w].run.advice);
    Verdict oracle_verdict = AuditVerdict(app, expect.trace, expect.advice);
    EXPECT_TRUE(wire_verdict.accepted);
    EXPECT_TRUE(wire_verdict == oracle_verdict)
        << "wire: " << wire_verdict.reason << " / " << wire_verdict.rule
        << "; oracle: " << oracle_verdict.reason << " / " << oracle_verdict.rule;
  }
}

TEST(NetWireTest, TamperedWireShardRejectsLikeTamperedOracle) {
  AppSpec app = MakeTestApp("motd");
  const std::vector<Value> inputs = MakeInputs("motd", 24, 17);

  WireServerConfig wc;
  wc.listen = UniqueSocketPath("tamper");
  wc.workers = 1;
  wc.batch = true;
  wc.server = BaseServerConfig();
  WireServer server(*app.program, wc);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  WireLoadOptions options;
  options.connections = 1;
  options.batch = true;
  WireLoadReport load = RunWireLoad(server.bound_address(), {inputs, {}}, options);
  ASSERT_TRUE(load.ok) << load.error;
  WireServerReport report = server.Wait();
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.shards.size(), 1u);

  Server oracle(*app.program, BaseServerConfig());
  ServerRunResult expect = oracle.Run(inputs);

  auto forge = [](Trace trace) {
    for (TraceEvent& event : trace.events) {
      if (event.kind == TraceEvent::Kind::kResponse) {
        event.payload = Value("forged response");
        break;
      }
    }
    return trace;
  };
  Verdict wire_verdict =
      AuditVerdict(app, forge(report.shards[0].run.trace), report.shards[0].run.advice);
  Verdict oracle_verdict = AuditVerdict(app, forge(expect.trace), expect.advice);
  EXPECT_FALSE(wire_verdict.accepted);
  EXPECT_FALSE(oracle_verdict.accepted);
  EXPECT_TRUE(wire_verdict == oracle_verdict)
      << "wire: " << wire_verdict.reason << "; oracle: " << oracle_verdict.reason;
}

TEST(NetWireTest, SlowClientKeepsResidentBytesBounded) {
  AppSpec app = MakeTestApp("motd");
  const size_t kHighWatermark = 64 * 1024;

  WireServerConfig wc;
  wc.listen = UniqueSocketPath("slow");
  wc.workers = 1;
  wc.batch = false;
  wc.high_watermark = kHighWatermark;
  wc.server = BaseServerConfig();
  wc.server.concurrency = 2;
  WireServer server(*app.program, wc);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Flood 200 x ~8KB set-requests without reading a single response: the
  // response backlog crosses the write watermark, the server read-disables
  // the connection, and the unread flood stays in kernel buffers instead of
  // resident server memory.
  auto conn = WireConn::Connect(server.bound_address(), &error);
  ASSERT_NE(conn, nullptr) << error;
  const size_t kRequests = 200;
  ValueMap set_req;
  set_req.emplace("op", Value("set"));
  set_req.emplace("day", Value("monday"));
  set_req.emplace("msg", Value(std::string(8 * 1024, 'm')));
  const Value big(set_req);
  for (size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(conn->SendRequest(i, big, &error)) << error;
  }

  // Now drain everything (the slow client finally catches up), then stop.
  size_t received = 0;
  while (received < kRequests) {
    uint64_t seq = 0;
    Value value;
    ASSERT_TRUE(conn->ReadResponse(&seq, &value, 30000, &error)) << error;
    ++received;
  }
  ASSERT_TRUE(conn->SendShutdown(1, &error)) << error;

  WireServerReport report = server.Wait();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.requests, kRequests);
  EXPECT_EQ(report.responses, kRequests);
  // Backpressure engaged at least once...
  EXPECT_GE(report.read_disables, 1u);
  // ...and resident per-connection memory stayed near the watermark: at most
  // high + one 16KB read chunk + one in-flight response frame, far below the
  // ~1.6MB an unbounded buffer would have held.
  EXPECT_LE(report.peak_connection_buffered_bytes, kHighWatermark + 64 * 1024);
}

TEST(NetWireTest, GarbageBytesGetErrorFrameAndClose) {
  AppSpec app = MakeTestApp("motd");
  WireServerConfig wc;
  wc.listen = UniqueSocketPath("garbage");
  wc.workers = 1;
  wc.batch = false;
  wc.server = BaseServerConfig();
  WireServer server(*app.program, wc);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  int fd = ConnectToAddress(server.bound_address(), &error);
  ASSERT_GE(fd, 0) << error;
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(write(fd, garbage, sizeof(garbage) - 1), 0);

  // The server must reply with an error frame and close.
  std::vector<uint8_t> reply(4096);
  size_t total = 0;
  for (;;) {
    ssize_t n = read(fd, reply.data() + total, reply.size() - total);
    if (n <= 0) {
      break;
    }
    total += static_cast<size_t>(n);
  }
  close(fd);
  ASSERT_GE(total, kWireFrameHeaderBytes);
  EXPECT_EQ(reply[0], static_cast<uint8_t>(FrameType::kError));

  server.Stop();
  WireServerReport report = server.Wait();
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.protocol_errors, 1u);
  EXPECT_EQ(report.requests, 0u);
}

}  // namespace
}  // namespace karousos
