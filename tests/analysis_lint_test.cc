// Advice-linter unit tests: one corruption per rule in the KAR-ADV catalogue
// (src/analysis/lint.h), each asserting that exactly the expected rule ID
// fires, plus clean-advice checks and the checked-in known-bad fixture.
//
// The corruptions target honest stacks advice — stacks exercises every
// advice section (handler logs, variable logs, transaction logs, write
// order) — so each test is "honest run, break one field, lint".
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/apps/app_util.h"
#include "src/audit/audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

ServerRunResult RunStacks(CollectMode mode = CollectMode::kKarousos) {
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 40;
  wl.seed = 7;
  wl.connections = 6;
  ServerConfig config;
  config.mode = mode;
  config.concurrency = 6;
  config.seed = 7;
  AppSpec app = MakeStacksApp();
  Server server(*app.program, config);
  return server.Run(GenerateWorkload(wl));
}

// True iff some diagnostic carries the rule.
bool HasRule(const std::vector<LintDiagnostic>& diagnostics, const std::string& rule) {
  for (const LintDiagnostic& d : diagnostics) {
    if (d.rule == rule) {
      return true;
    }
  }
  return false;
}

// Lints the corrupted run and additionally audits it, asserting that the
// audit's structured rejection names the same rule (the corruptions below
// each trip exactly one rule, which is therefore the first error).
void ExpectRule(const ServerRunResult& run, const std::string& rule) {
  std::vector<LintDiagnostic> diagnostics = LintAdvice(run.trace, run.advice);
  EXPECT_TRUE(HasRule(diagnostics, rule)) << "lint did not report " << rule;
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_EQ(diagnostics.front().rule, rule) << diagnostics.front().Format();

  AuditResult audit = AuditOnly(MakeStacksApp(), run.trace, run.advice,
                                IsolationLevel::kSerializable);
  EXPECT_FALSE(audit.accepted);
  EXPECT_EQ(audit.rule, rule) << audit.reason;
  EXPECT_NE(audit.reason.find(rule), std::string::npos) << audit.reason;
}

TEST(AnalysisLintTest, HonestKarousosAdviceIsClean) {
  ServerRunResult run = RunStacks();
  EXPECT_TRUE(LintAdvice(run.trace, run.advice).empty());
}

TEST(AnalysisLintTest, HonestOrochiAdviceIsClean) {
  ServerRunResult run = RunStacks(CollectMode::kOrochi);
  EXPECT_TRUE(LintAdvice(run.trace, run.advice).empty());
}

TEST(AnalysisLintTest, Rule001PhantomRequestId) {
  ServerRunResult run = RunStacks();
  run.advice.tags[999] = 1;
  ExpectRule(run, "KAR-ADV-001");
}

TEST(AnalysisLintTest, Rule002ReservedHandlerIdInOpcounts) {
  ServerRunResult run = RunStacks();
  run.advice.opcounts[{1, kInitHandlerId}] = 1;
  ExpectRule(run, "KAR-ADV-002");
}

TEST(AnalysisLintTest, Rule003DanglingPrec) {
  ServerRunResult run = RunStacks();
  bool corrupted = false;
  for (auto& [vid, log] : run.advice.var_logs) {
    for (auto& [op, entry] : log) {
      if (entry.kind == VarLogEntry::Kind::kRead) {
        entry.prec = OpRef{op.rid, op.hid, kOpNumInf - 1};
        corrupted = true;
        break;
      }
    }
    if (corrupted) {
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  ExpectRule(run, "KAR-ADV-003");
}

TEST(AnalysisLintTest, Rule004VarLogEntryBeyondOpcount) {
  ServerRunResult run = RunStacks();
  ASSERT_FALSE(run.advice.var_logs.empty());
  auto& [vid, log] = *run.advice.var_logs.begin();
  ASSERT_FALSE(log.empty());
  OpRef at = log.begin()->first;
  at.opnum = kOpNumInf - 1;
  VarLogEntry entry;
  entry.kind = VarLogEntry::Kind::kWrite;
  log.emplace(at, std::move(entry));
  ExpectRule(run, "KAR-ADV-004");
}

TEST(AnalysisLintTest, Rule005HandlerLogEntryOutOfRange) {
  ServerRunResult run = RunStacks();
  bool corrupted = false;
  for (auto& [rid, log] : run.advice.handler_logs) {
    if (!log.empty()) {
      log.front().opnum = 999;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  ExpectRule(run, "KAR-ADV-005");
}

TEST(AnalysisLintTest, Rule006DuplicateOperationClaims) {
  ServerRunResult run = RunStacks();
  bool corrupted = false;
  for (auto& [rid, log] : run.advice.handler_logs) {
    if (!log.empty()) {
      log.push_back(log.front());
      // Grow the opcount so the duplicate clears the range check (005).
      run.advice.opcounts[{rid, log.front().hid}] += 1;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  ExpectRule(run, "KAR-ADV-006");
}

TEST(AnalysisLintTest, Rule007ResponseEmittedByNonexistentOp) {
  ServerRunResult run = RunStacks();
  ASSERT_FALSE(run.advice.response_emitted_by.empty());
  run.advice.response_emitted_by.begin()->second = {0x1234u, 999u};
  ExpectRule(run, "KAR-ADV-007");
}

TEST(AnalysisLintTest, Rule008ResponseEmittedByMissing) {
  ServerRunResult run = RunStacks();
  ASSERT_FALSE(run.advice.response_emitted_by.empty());
  run.advice.response_emitted_by.erase(run.advice.response_emitted_by.begin());
  ExpectRule(run, "KAR-ADV-008");
}

TEST(AnalysisLintTest, Rule009WriteOrderDanglingReference) {
  ServerRunResult run = RunStacks();
  ASSERT_FALSE(run.advice.tx_logs.empty());
  run.advice.write_order.push_back(
      TxOpRef{run.advice.tx_logs.begin()->first.rid, 0xdeadbeefu, 1});
  ExpectRule(run, "KAR-ADV-009");
}

TEST(AnalysisLintTest, Rule010WriteOrderCycle) {
  ServerRunResult run = RunStacks();
  ASSERT_GE(run.advice.write_order.size(), 2u);
  run.advice.write_order.push_back(run.advice.write_order.front());
  ExpectRule(run, "KAR-ADV-010");
}

TEST(AnalysisLintTest, Rule011GetDictatingWriteOutOfRange) {
  ServerRunResult run = RunStacks();
  bool corrupted = false;
  for (auto& [txn, log] : run.advice.tx_logs) {
    for (TxOperation& op : log) {
      if (op.type == TxOpType::kGet && op.get_found) {
        op.get_from.index = 9999;
        corrupted = true;
        break;
      }
    }
    if (corrupted) {
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "stacks run produced no found GET";
  ExpectRule(run, "KAR-ADV-011");
}

TEST(AnalysisLintTest, Rule012TxLogEntryBeyondOpcount) {
  ServerRunResult run = RunStacks();
  ASSERT_FALSE(run.advice.tx_logs.empty());
  auto& [txn, log] = *run.advice.tx_logs.begin();
  ASSERT_FALSE(log.empty());
  TxOperation extra;
  extra.type = TxOpType::kTxAbort;
  extra.hid = log.front().hid;
  extra.opnum = 999;
  log.push_back(std::move(extra));
  ExpectRule(run, "KAR-ADV-012");
}

TEST(AnalysisLintTest, Rule013NondetRecordBeyondOpcount) {
  ServerRunResult run = RunStacks();
  ASSERT_FALSE(run.advice.opcounts.empty());
  const auto& [key, count] = *run.advice.opcounts.begin();
  run.advice.nondet[OpRef{key.first, key.second, count + 50}] =
      NondetRecord{NondetRecord::Kind::kValue, Value(int64_t{4})};
  ExpectRule(run, "KAR-ADV-013");
}

TEST(AnalysisLintTest, Rule014MissingTag) {
  ServerRunResult run = RunStacks();
  ASSERT_FALSE(run.advice.tags.empty());
  run.advice.tags.erase(run.advice.tags.begin());
  ExpectRule(run, "KAR-ADV-014");
}

TEST(AnalysisLintTest, LintIsDeterministic) {
  ServerRunResult run = RunStacks();
  run.advice.tags[999] = 1;
  run.advice.write_order.push_back(run.advice.write_order.front());
  std::vector<LintDiagnostic> first = LintAdvice(run.trace, run.advice);
  std::vector<LintDiagnostic> second = LintAdvice(run.trace, run.advice);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].Format(), second[i].Format());
  }
}

// The checked-in fixture (tools/make_lint_fixture.cc): lint reports both
// planted corruptions; a full audit rejects with the first one, structured.
TEST(AnalysisLintTest, CheckedInFixtureReportsBothPlantedRules) {
  auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing fixture " << path;
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  };
  const std::string dir = KAROUSOS_FIXTURE_DIR;
  std::vector<uint8_t> trace_bytes = read_file(dir + "/lint_bad.trace");
  std::vector<uint8_t> advice_bytes = read_file(dir + "/lint_bad.advice");
  ASSERT_FALSE(trace_bytes.empty());
  ASSERT_FALSE(advice_bytes.empty());

  ByteReader trace_reader(trace_bytes);
  auto trace = Trace::Deserialize(&trace_reader);
  ASSERT_TRUE(trace.has_value());
  ByteReader advice_reader(advice_bytes);
  auto advice = Advice::Deserialize(&advice_reader);
  ASSERT_TRUE(advice.has_value());

  std::vector<LintDiagnostic> diagnostics = LintAdvice(*trace, *advice);
  EXPECT_TRUE(HasRule(diagnostics, "KAR-ADV-003"));
  EXPECT_TRUE(HasRule(diagnostics, "KAR-ADV-010"));

  AuditResult audit =
      AuditOnly(MakeStacksApp(), *trace, *advice, IsolationLevel::kSerializable);
  EXPECT_FALSE(audit.accepted);
  EXPECT_EQ(audit.rule, "KAR-ADV-003") << audit.reason;
  // The audit result carries every finding, not just the rejecting one.
  EXPECT_TRUE(HasRule(audit.diagnostics, "KAR-ADV-010"));
}

}  // namespace
}  // namespace karousos
