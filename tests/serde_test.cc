#include "src/common/serde.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace karousos {
namespace {

TEST(SerdeTest, VarintRoundTrip) {
  ByteWriter w;
  const uint64_t samples[] = {0, 1, 127, 128, 300, 1u << 20, ~uint64_t{0}};
  for (uint64_t v : samples) {
    w.WriteVarint(v);
  }
  ByteReader r(w.bytes());
  for (uint64_t v : samples) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ReserveGrowsCapacityWithoutChangingContents) {
  ByteWriter w;
  w.WriteVarint(300);
  const std::vector<uint8_t> before = w.bytes();
  w.Reserve(4096);
  EXPECT_EQ(w.bytes(), before);
  EXPECT_GE(w.capacity(), before.size() + 4096);

  // Writes within the reserved headroom must not reallocate.
  const uint8_t* data = w.bytes().data();
  for (int i = 0; i < 100; ++i) {
    w.WriteVarint(static_cast<uint64_t>(i) * 1234567);
  }
  EXPECT_EQ(w.bytes().data(), data);

  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadVarint(), 300u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*r.ReadVarint(), static_cast<uint64_t>(i) * 1234567);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ClearEmptiesButKeepsCapacityForReuse) {
  ByteWriter w;
  for (int i = 0; i < 256; ++i) {
    w.WriteFixed32(static_cast<uint32_t>(i));
  }
  const size_t cap = w.capacity();
  ASSERT_GT(cap, 0u);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.bytes().empty());
  // Clear is the scratch-buffer reuse primitive: capacity must survive so a
  // per-frame encoder doesn't re-grow from zero each frame.
  EXPECT_EQ(w.capacity(), cap);

  w.WriteString("after clear");
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadString(), "after clear");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedVarintFails) {
  std::vector<uint8_t> bytes = {0x80, 0x80};  // Continuation bits, no terminator.
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadVarint().has_value());
}

TEST(SerdeTest, StringRoundTripAndBounds) {
  ByteWriter w;
  w.WriteString("hello");
  w.WriteString("");
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(*r.ReadString(), "");
  // A length prefix larger than the remaining buffer must fail cleanly.
  ByteWriter bad;
  bad.WriteVarint(1000);
  bad.WriteByte('x');
  ByteReader r2(bad.bytes());
  EXPECT_FALSE(r2.ReadString().has_value());
}

TEST(SerdeTest, StringViewRoundTripMatchesString) {
  ByteWriter w;
  w.WriteString("zero-copy");
  w.WriteString("");
  ByteReader r(w.bytes());
  auto v1 = r.ReadStringView();
  auto v2 = r.ReadStringView();
  ASSERT_TRUE(v1.has_value());
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v1, "zero-copy");
  EXPECT_EQ(*v2, "");
  EXPECT_TRUE(r.AtEnd());
}

// Regression: the zero-copy reader must reject truncated buffers exactly
// where ReadString does — same inputs, same nullopt, same final position.
TEST(SerdeTest, StringViewRejectsTruncationLikeReadString) {
  const std::vector<std::vector<uint8_t>> malformed = {
      {},                    // No length prefix at all.
      {0x80, 0x80},          // Unterminated varint length.
      {0x05, 'a', 'b'},      // Length 5, only 2 payload bytes.
      {0xe8, 0x07, 'x'},     // Length 1000, 1 payload byte.
  };
  for (const auto& bytes : malformed) {
    ByteReader as_string(bytes);
    ByteReader as_view(bytes);
    auto s = as_string.ReadString();
    auto v = as_view.ReadStringView();
    EXPECT_FALSE(s.has_value());
    EXPECT_FALSE(v.has_value());
    EXPECT_EQ(as_string.remaining(), as_view.remaining());
  }
  // And a well-formed prefix must decode identically through both paths.
  ByteWriter w;
  w.WriteString("same bytes");
  ByteReader as_string(w.bytes());
  ByteReader as_view(w.bytes());
  EXPECT_EQ(*as_string.ReadString(), std::string(*as_view.ReadStringView()));
}

TEST(SerdeTest, ValueRoundTripAllKinds) {
  Value original = MakeMap({
      {"null", Value()},
      {"bool", Value(true)},
      {"neg", Value(-123456789)},
      {"dbl", Value(2.25)},
      {"str", Value("text")},
      {"list", MakeList({1, "two", MakeMap({{"x", 3}})})},
  });
  ByteWriter w;
  w.WriteValue(original);
  ByteReader r(w.bytes());
  auto decoded = r.ReadValue();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, MalformedValueKindFails) {
  std::vector<uint8_t> bytes = {0x09};  // Kind byte out of range.
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadValue().has_value());
}

TEST(SerdeTest, RandomValueFuzzRoundTrip) {
  // Property: encode(decode(x)) == x for randomly generated values.
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    std::function<Value(int)> gen = [&](int depth) -> Value {
      switch (rng.Below(depth > 2 ? 5 : 7)) {
        case 0:
          return Value();
        case 1:
          return Value(rng.Below(2) == 1);
        case 2:
          return Value(static_cast<int64_t>(rng.Next()));
        case 3:
          return Value(static_cast<double>(rng.NextDouble()));
        case 4:
          return Value("s" + std::to_string(rng.Below(1000)));
        case 5: {
          ValueList list;
          for (uint64_t i = 0, n = rng.Below(4); i < n; ++i) {
            list.push_back(gen(depth + 1));
          }
          return Value(std::move(list));
        }
        default: {
          ValueMap map;
          for (uint64_t i = 0, n = rng.Below(4); i < n; ++i) {
            map.emplace("k" + std::to_string(i), gen(depth + 1));
          }
          return Value(std::move(map));
        }
      }
    };
    Value original = gen(0);
    ByteWriter w;
    w.WriteValue(original);
    ByteReader r(w.bytes());
    auto decoded = r.ReadValue();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, original);
  }
}

}  // namespace
}  // namespace karousos
