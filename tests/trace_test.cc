#include "src/trace/trace.h"

#include <gtest/gtest.h>

namespace karousos {
namespace {

Trace MakeBalanced() {
  Trace trace;
  trace.events = {
      {TraceEvent::Kind::kRequest, 1, Value("in1")},
      {TraceEvent::Kind::kRequest, 2, Value("in2")},
      {TraceEvent::Kind::kResponse, 2, Value("out2")},
      {TraceEvent::Kind::kResponse, 1, Value("out1")},
  };
  return trace;
}

TEST(TraceTest, BalancedTracePasses) {
  std::string reason;
  EXPECT_TRUE(MakeBalanced().IsBalanced(&reason)) << reason;
}

TEST(TraceTest, ResponseBeforeRequestFails) {
  Trace trace;
  trace.events = {
      {TraceEvent::Kind::kResponse, 1, Value()},
      {TraceEvent::Kind::kRequest, 1, Value()},
  };
  std::string reason;
  EXPECT_FALSE(trace.IsBalanced(&reason));
}

TEST(TraceTest, MissingResponseFails) {
  Trace trace = MakeBalanced();
  trace.events.pop_back();
  std::string reason;
  EXPECT_FALSE(trace.IsBalanced(&reason));
  EXPECT_NE(reason.find("no response"), std::string::npos);
}

TEST(TraceTest, DuplicateRequestFails) {
  Trace trace = MakeBalanced();
  trace.events.push_back({TraceEvent::Kind::kRequest, 1, Value()});
  std::string reason;
  EXPECT_FALSE(trace.IsBalanced(&reason));
}

TEST(TraceTest, DuplicateResponseFails) {
  Trace trace = MakeBalanced();
  trace.events.push_back({TraceEvent::Kind::kResponse, 1, Value()});
  std::string reason;
  EXPECT_FALSE(trace.IsBalanced(&reason));
}

TEST(TraceTest, Lookups) {
  Trace trace = MakeBalanced();
  EXPECT_EQ(trace.request_count(), 2u);
  EXPECT_EQ(trace.RequestIds(), (std::vector<RequestId>{1, 2}));
  EXPECT_EQ(*trace.RequestInput(2), Value("in2"));
  EXPECT_EQ(*trace.Response(1), Value("out1"));
  EXPECT_FALSE(trace.Response(3).has_value());
}

TEST(TraceTest, SerializationRoundTrip) {
  Trace trace = MakeBalanced();
  ByteWriter w;
  trace.Serialize(&w);
  ByteReader r(w.bytes());
  auto decoded = Trace::Deserialize(&r);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->events.size(), trace.events.size());
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(decoded->events[i].kind, trace.events[i].kind);
    EXPECT_EQ(decoded->events[i].rid, trace.events[i].rid);
    EXPECT_EQ(decoded->events[i].payload, trace.events[i].payload);
  }
}

TEST(TraceTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage = {0x05, 0x99, 0x01};
  ByteReader r(garbage);
  EXPECT_FALSE(Trace::Deserialize(&r).has_value());
}

TEST(TraceIndexTest, MatchesTheLinearScanMethods) {
  Trace trace = MakeBalanced();
  TraceIndex index(trace);
  for (RequestId rid = 0; rid <= 4; ++rid) {
    EXPECT_EQ(index.RequestInput(rid), trace.RequestInput(rid)) << "rid " << rid;
    EXPECT_EQ(index.Response(rid), trace.Response(rid)) << "rid " << rid;
  }
}

TEST(TraceIndexTest, DuplicatesYieldNullopt) {
  Trace trace;
  trace.events.push_back({TraceEvent::Kind::kRequest, 1, Value("a")});
  trace.events.push_back({TraceEvent::Kind::kRequest, 1, Value("b")});
  trace.events.push_back({TraceEvent::Kind::kResponse, 1, Value("x")});
  trace.events.push_back({TraceEvent::Kind::kResponse, 1, Value("y")});
  TraceIndex index(trace);
  // Same contract as the scan methods: a duplicated event makes the lookup
  // report absence rather than picking a winner.
  EXPECT_FALSE(index.RequestInput(1).has_value());
  EXPECT_FALSE(index.Response(1).has_value());
  EXPECT_EQ(index.RequestInput(1), trace.RequestInput(1));
  EXPECT_EQ(index.Response(1), trace.Response(1));
}

}  // namespace
}  // namespace karousos
