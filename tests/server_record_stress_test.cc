// Record-path stress: stacks at 600 requests pushed through epoch rollover at
// extreme epoch sizes. The monolithic advice must be invariant across epoch
// configurations (slicing happens after the run, off the hot path), the
// server-emitted segment streams must byte-match what the verifier-side
// copying slicer produces for the same run, and every frame must decode.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/app.h"
#include "src/common/segment.h"
#include "src/server/rollover.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

constexpr size_t kRequests = 600;
constexpr int kConcurrency = 15;

std::vector<Value> StacksWorkload() {
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = kRequests;
  wl.seed = 7;
  wl.connections = kConcurrency;
  return GenerateWorkload(wl);
}

ServerRunResult RunStacks(uint64_t epoch_requests) {
  AppSpec app = MakeStacksApp();
  ServerConfig config;
  config.concurrency = kConcurrency;
  config.seed = 7;
  config.epoch_requests = epoch_requests;
  Server server(*app.program, config);
  return server.Run(StacksWorkload());
}

std::vector<uint8_t> AdviceBytes(const Advice& advice) {
  ByteWriter w;
  advice.Serialize(&w);
  return w.bytes();
}

// Decodes every frame of a segment container, checking kind and ascending
// epoch numbering, and that each payload parses.
void CheckStreamDecodes(const std::vector<uint8_t>& bytes, SegmentKind want_kind,
                        size_t* frames_out) {
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  ASSERT_NE(reader, nullptr) << error;
  SegmentRecord rec;
  size_t frames = 0;
  while (reader->Next(&rec)) {
    EXPECT_EQ(rec.kind, want_kind);
    EXPECT_EQ(rec.epoch, frames);
    if (want_kind == SegmentKind::kTrace) {
      EXPECT_TRUE(DecodeTraceSegmentPayload(rec.payload).has_value())
          << "trace frame " << frames << " payload failed to decode";
    } else {
      EXPECT_TRUE(DecodeAdviceSegmentPayload(rec.payload).has_value())
          << "advice frame " << frames << " payload failed to decode";
    }
    ++frames;
  }
  EXPECT_TRUE(reader->ok()) << reader->error();
  *frames_out = frames;
}

class ServerRecordStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServerRecordStressTest, RolloverMatchesReferenceSlicerAndDecodes) {
  const uint64_t epoch_requests = GetParam();
  ServerRunResult run = RunStacks(epoch_requests);

  // The streams the server emitted (built by the owned move-based slicer)
  // must equal a from-scratch re-slice of the merged outputs through the
  // verifier-side copying path — the pre-rewrite reference.
  EpochSlices reference = SliceRun(run.trace, run.advice, epoch_requests);
  EXPECT_EQ(run.trace_segments, EncodeTraceSegments(reference));
  EXPECT_EQ(run.advice_segments, EncodeAdviceSegments(reference));

  const uint64_t expected_epochs =
      epoch_requests == 0 ? 1 : (kRequests + epoch_requests - 1) / epoch_requests;
  size_t trace_frames = 0;
  size_t advice_frames = 0;
  CheckStreamDecodes(run.trace_segments, SegmentKind::kTrace, &trace_frames);
  CheckStreamDecodes(run.advice_segments, SegmentKind::kAdvice, &advice_frames);
  EXPECT_EQ(trace_frames, expected_epochs);
  EXPECT_EQ(advice_frames, expected_epochs);

  // Reassembling the decoded frames must restore the monolithic advice.
  std::string error;
  auto reader =
      SegmentReader::FromBytes(run.advice_segments.data(), run.advice_segments.size(), &error);
  ASSERT_NE(reader, nullptr) << error;
  EpochSlices decoded;
  decoded.epoch_requests = epoch_requests;
  SegmentRecord rec;
  while (reader->Next(&rec)) {
    auto payload = DecodeAdviceSegmentPayload(rec.payload);
    ASSERT_TRUE(payload.has_value());
    EpochSegment seg;
    seg.epoch = rec.epoch;
    seg.advice = std::move(payload->advice);
    seg.imports = std::move(payload->imports);
    decoded.segments.push_back(std::move(seg));
  }
  ASSERT_TRUE(reader->ok()) << reader->error();
  Advice merged = MergeSlices(std::move(decoded));
  EXPECT_EQ(AdviceBytes(merged), AdviceBytes(run.advice));
}

INSTANTIATE_TEST_SUITE_P(EpochSizes, ServerRecordStressTest,
                         ::testing::Values<uint64_t>(1, 50, kRequests),
                         [](const ::testing::TestParamInfo<uint64_t>& param) {
                           return "epoch" + std::to_string(param.param);
                         });

// The run itself (schedule, trace, monolithic advice) must not depend on the
// epoch configuration: slicing is post-run repackaging.
TEST(ServerRecordStressTest, MonolithicAdviceInvariantAcrossEpochSizes) {
  ServerRunResult whole = RunStacks(0);
  std::vector<uint8_t> want = AdviceBytes(whole.advice);

  ByteWriter trace_bytes;
  whole.trace.Serialize(&trace_bytes);

  for (uint64_t epoch_requests : {uint64_t{1}, uint64_t{50}, uint64_t{kRequests}}) {
    ServerRunResult run = RunStacks(epoch_requests);
    EXPECT_EQ(AdviceBytes(run.advice), want)
        << "advice changed at epoch size " << epoch_requests;
    ByteWriter t;
    run.trace.Serialize(&t);
    EXPECT_EQ(t.bytes(), trace_bytes.bytes())
        << "trace changed at epoch size " << epoch_requests;
  }
}

}  // namespace
}  // namespace karousos
