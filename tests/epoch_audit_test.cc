// Epoch-streaming equivalence: for the same complete (trace, advice) pair,
// the streamed AuditSession must reach the one-shot verifier's verdict,
// reason, rule, and diagnostics at every epoch size and thread count —
// honest and adversarial runs alike. Plus the resume story: a checkpoint
// saved mid-stream restores into a session that finishes with the identical
// verdict, and malformed or mismatched checkpoints are refused.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/audit/stream.h"
#include "src/kem/varid.h"
#include "src/verifier/session.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct HonestRun {
  AppSpec app;
  ServerRunResult server;
};

HonestRun RunApp(const std::string& name, size_t requests, int concurrency = 8) {
  HonestRun run{name == "motd"     ? MakeMotdApp()
                : name == "stacks" ? MakeStacksApp()
                                   : MakeWikiApp(),
                {}};
  WorkloadConfig wl;
  wl.app = name;
  wl.kind = name == "wiki" ? WorkloadKind::kWikiMix : WorkloadKind::kMixed;
  wl.requests = requests;
  ServerConfig config;
  config.concurrency = concurrency;
  Server server(*run.app.program, config);
  run.server = server.Run(GenerateWorkload(wl));
  return run;
}

void ExpectSameOutcome(const AuditResult& expected, const AuditResult& actual,
                       const std::string& context) {
  EXPECT_EQ(expected.accepted, actual.accepted) << context << ": " << actual.reason;
  EXPECT_EQ(expected.reason, actual.reason) << context;
  EXPECT_EQ(expected.rule, actual.rule) << context;
  ASSERT_EQ(expected.diagnostics.size(), actual.diagnostics.size()) << context;
  for (size_t i = 0; i < expected.diagnostics.size(); ++i) {
    EXPECT_EQ(expected.diagnostics[i].Format(), actual.diagnostics[i].Format())
        << context << " diagnostic " << i;
  }
}

// The equivalence sweep: one-shot oracle vs epoch sizes {1, 7, 50, 0=∞} at
// threads {1, 4}.
void ExpectStreamMatchesOneShot(const HonestRun& run) {
  AuditResult oneshot =
      AuditOnly(run.app, run.server.trace, run.server.advice,
                VerifierConfig{IsolationLevel::kSerializable, 1},
                &run.server.untracked_accesses);
  for (uint64_t epoch_size : {uint64_t{1}, uint64_t{7}, uint64_t{50}, uint64_t{0}}) {
    for (unsigned threads : {1u, 4u}) {
      StreamAuditResult streamed = AuditStreamed(
          run.app, run.server.trace, run.server.advice,
          VerifierConfig{IsolationLevel::kSerializable, threads}, epoch_size,
          &run.server.untracked_accesses);
      ExpectSameOutcome(oneshot, streamed.audit,
                        "epoch_size=" + std::to_string(epoch_size) +
                            " threads=" + std::to_string(threads));
    }
  }
}

TEST(EpochEquivalenceTest, HonestMotd) { ExpectStreamMatchesOneShot(RunApp("motd", 60)); }

TEST(EpochEquivalenceTest, HonestStacks) { ExpectStreamMatchesOneShot(RunApp("stacks", 60)); }

TEST(EpochEquivalenceTest, HonestWiki) { ExpectStreamMatchesOneShot(RunApp("wiki", 60)); }

// --- Adversarial equivalence: every mutation the one-shot verifier rejects --
// --- must reject identically when streamed. --------------------------------

TEST(EpochEquivalenceTest, ForgedResponse) {
  HonestRun run = RunApp("motd", 40);
  for (TraceEvent& ev : run.server.trace.events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"msg", "forged"}});
      break;
    }
  }
  ExpectStreamMatchesOneShot(run);
}

TEST(EpochEquivalenceTest, ForgedResponseInLateEpoch) {
  HonestRun run = RunApp("motd", 40);
  for (auto it = run.server.trace.events.rbegin(); it != run.server.trace.events.rend();
       ++it) {
    if (it->kind == TraceEvent::Kind::kResponse) {
      it->payload = MakeMap({{"msg", "forged"}});
      break;
    }
  }
  ExpectStreamMatchesOneShot(run);
}

TEST(EpochEquivalenceTest, TamperedVarLogWriteValue) {
  HonestRun run = RunApp("motd", 40);
  bool mutated = false;
  for (auto& [vid, log] : run.server.advice.var_logs) {
    for (auto& [op, entry] : log) {
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        entry.value = Value("poisoned");
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  ASSERT_TRUE(mutated);
  ExpectStreamMatchesOneShot(run);
}

TEST(EpochEquivalenceTest, GhostVarLogEntry) {
  HonestRun run = RunApp("motd", 40);
  VarId vid = ResolveVarId("motd", VarScope::kGlobal, 0);
  VarLogEntry ghost;
  ghost.kind = VarLogEntry::Kind::kWrite;
  ghost.value = Value("ghost");
  ghost.prec = kNilOp;
  run.server.advice.var_logs[vid].emplace(OpRef{1, 0x1234, 77}, ghost);
  ExpectStreamMatchesOneShot(run);
}

TEST(EpochEquivalenceTest, DroppedHandlerLogEntry) {
  HonestRun run = RunApp("stacks", 60);
  bool mutated = false;
  for (auto& [rid, log] : run.server.advice.handler_logs) {
    if (!log.empty()) {
      log.pop_back();
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  ExpectStreamMatchesOneShot(run);
}

TEST(EpochEquivalenceTest, InflatedOpcount) {
  HonestRun run = RunApp("motd", 40);
  ASSERT_FALSE(run.server.advice.opcounts.empty());
  run.server.advice.opcounts.begin()->second += 1;
  ExpectStreamMatchesOneShot(run);
}

TEST(EpochEquivalenceTest, MissingResponseEmittedBy) {
  HonestRun run = RunApp("motd", 40);
  ASSERT_FALSE(run.server.advice.response_emitted_by.empty());
  run.server.advice.response_emitted_by.erase(run.server.advice.response_emitted_by.begin());
  ExpectStreamMatchesOneShot(run);
}

TEST(EpochEquivalenceTest, SwappedWriteOrder) {
  HonestRun run = RunApp("stacks", 60);
  ASSERT_GE(run.server.advice.write_order.size(), 2u);
  std::swap(run.server.advice.write_order.front(), run.server.advice.write_order.back());
  ExpectStreamMatchesOneShot(run);
}

TEST(EpochEquivalenceTest, GetClaimedNotFound) {
  HonestRun run = RunApp("stacks", 60);
  bool mutated = false;
  for (auto& [txn, log] : run.server.advice.tx_logs) {
    for (TxOperation& op : log) {
      if (op.type == TxOpType::kGet && op.get_found) {
        op.get_found = false;
        op.get_from = kNilTxOp;
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  if (!mutated) {
    GTEST_SKIP() << "no found GET in this schedule";
  }
  // This mutation diverts control flow, so the one-shot verifier catches it
  // as intra-group divergence — a check whose firing depends on the
  // re-execution group's composition. Epoch slicing legitimately changes
  // that composition (a group cannot span epochs), so at epoch size 1 the
  // mutated request re-executes alone and the same fault surfaces at the
  // next check instead. The soundness contract is rejection at every size;
  // reason identity is asserted where grouping is preserved.
  AuditResult oneshot =
      AuditOnly(run.app, run.server.trace, run.server.advice,
                VerifierConfig{IsolationLevel::kSerializable, 1},
                &run.server.untracked_accesses);
  ASSERT_FALSE(oneshot.accepted);
  for (uint64_t epoch_size : {uint64_t{1}, uint64_t{7}, uint64_t{50}, uint64_t{0}}) {
    for (unsigned threads : {1u, 4u}) {
      StreamAuditResult streamed = AuditStreamed(
          run.app, run.server.trace, run.server.advice,
          VerifierConfig{IsolationLevel::kSerializable, threads}, epoch_size,
          &run.server.untracked_accesses);
      std::string context = "epoch_size=" + std::to_string(epoch_size) +
                            " threads=" + std::to_string(threads);
      EXPECT_FALSE(streamed.audit.accepted) << context;
      if (epoch_size != 1) {
        ExpectSameOutcome(oneshot, streamed.audit, context);
      }
    }
  }
}

TEST(EpochEquivalenceTest, UnbalancedTraceMissingResponse) {
  HonestRun run = RunApp("motd", 40);
  for (auto it = run.server.trace.events.rbegin(); it != run.server.trace.events.rend();
       ++it) {
    if (it->kind == TraceEvent::Kind::kResponse) {
      run.server.trace.events.erase(std::next(it).base());
      break;
    }
  }
  ExpectStreamMatchesOneShot(run);
}

// --- Checkpoint / resume ---------------------------------------------------

TEST(EpochCheckpointTest, ResumeFromMidStreamReachesTheSameVerdict) {
  HonestRun run = RunApp("stacks", 60);
  AuditResult oneshot = AuditOnly(run.app, run.server.trace, run.server.advice,
                                  VerifierConfig{IsolationLevel::kSerializable, 1});
  ASSERT_TRUE(oneshot.accepted) << oneshot.reason;

  const uint64_t kEpochSize = 7;
  VerifierConfig config{IsolationLevel::kSerializable, 1};
  EpochSlices slices = SliceRun(run.server.trace, run.server.advice, kEpochSize);
  ASSERT_GE(slices.segments.size(), 4u);

  AuditSession first(*run.app.program, config, kEpochSize);
  size_t half = slices.segments.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(first.FeedEpoch(slices.segments[i]));
  }
  std::vector<uint8_t> checkpoint = first.SaveCheckpoint();
  // `first` is abandoned here — the process-kill in the resume story.

  std::string error;
  auto resumed = AuditSession::Restore(*run.app.program, config, checkpoint, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->next_epoch(), half);
  EXPECT_EQ(resumed->epoch_requests(), kEpochSize);
  FeedRemaining(resumed.get(), slices);
  AuditResult finished = resumed->Finish();
  ExpectSameOutcome(oneshot, finished, "resumed");
}

TEST(EpochCheckpointTest, CheckpointAfterEveryEpochStillMatches) {
  // The torture variant: serialize + restore between every pair of epochs.
  // Any carry field missing from the checkpoint shows up here as a verdict
  // or diagnostics divergence.
  HonestRun run = RunApp("stacks", 60);
  AuditResult oneshot = AuditOnly(run.app, run.server.trace, run.server.advice,
                                  VerifierConfig{IsolationLevel::kSerializable, 1});

  const uint64_t kEpochSize = 7;
  VerifierConfig config{IsolationLevel::kSerializable, 1};
  EpochSlices slices = SliceRun(run.server.trace, run.server.advice, kEpochSize);
  auto session = std::make_unique<AuditSession>(*run.app.program, config, kEpochSize);
  for (const EpochSegment& segment : slices.segments) {
    session->FeedEpoch(segment);
    std::string error;
    auto reloaded =
        AuditSession::Restore(*run.app.program, config, session->SaveCheckpoint(), &error);
    ASSERT_NE(reloaded, nullptr) << error;
    session = std::move(reloaded);
  }
  AuditResult finished = session->Finish();
  ExpectSameOutcome(oneshot, finished, "checkpoint-every-epoch");
}

TEST(EpochCheckpointTest, RestoreRefusesMalformedBytes) {
  HonestRun run = RunApp("motd", 10);
  VerifierConfig config{IsolationLevel::kSerializable, 1};
  std::string error;
  EXPECT_EQ(AuditSession::Restore(*run.app.program, config, {}, &error), nullptr);
  EXPECT_FALSE(error.empty());

  std::vector<uint8_t> garbage = {'K', 'S', 'E', 'G', 1, 42, 42, 42};
  error.clear();
  EXPECT_EQ(AuditSession::Restore(*run.app.program, config, garbage, &error), nullptr);
  EXPECT_FALSE(error.empty());

  // A valid checkpoint with any single truncation must also be refused.
  AuditSession session(*run.app.program, config, 3);
  EpochSlices slices = SliceRun(run.server.trace, run.server.advice, 3);
  ASSERT_FALSE(slices.segments.empty());
  session.FeedEpoch(slices.segments[0]);
  std::vector<uint8_t> checkpoint = session.SaveCheckpoint();
  std::vector<uint8_t> truncated(checkpoint.begin(), checkpoint.end() - 1);
  error.clear();
  EXPECT_EQ(AuditSession::Restore(*run.app.program, config, truncated, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(EpochCheckpointTest, RestoreRefusesIsolationMismatch) {
  HonestRun run = RunApp("stacks", 20);
  VerifierConfig ser{IsolationLevel::kSerializable, 1};
  AuditSession session(*run.app.program, ser, 5);
  EpochSlices slices = SliceRun(run.server.trace, run.server.advice, 5);
  ASSERT_FALSE(slices.segments.empty());
  session.FeedEpoch(slices.segments[0]);
  std::vector<uint8_t> checkpoint = session.SaveCheckpoint();

  VerifierConfig rc{IsolationLevel::kReadCommitted, 1};
  std::string error;
  EXPECT_EQ(AuditSession::Restore(*run.app.program, rc, checkpoint, &error), nullptr);
  EXPECT_NE(error.find("isolation"), std::string::npos) << error;
}

TEST(EpochStreamTest, OutOfOrderSegmentRejects) {
  HonestRun run = RunApp("motd", 40);
  VerifierConfig config{IsolationLevel::kSerializable, 1};
  EpochSlices slices = SliceRun(run.server.trace, run.server.advice, 7);
  ASSERT_GE(slices.segments.size(), 2u);
  AuditSession session(*run.app.program, config, 7);
  EXPECT_FALSE(session.FeedEpoch(slices.segments[1]));
  EXPECT_TRUE(session.decided());
  AuditResult result = session.Finish();
  EXPECT_FALSE(result.accepted);
  EXPECT_NE(result.reason.find("out of order"), std::string::npos) << result.reason;
}

TEST(EpochStreamTest, PeakResidentStaysBelowTheFullAdvice) {
  HonestRun run = RunApp("stacks", 120, 15);
  size_t full = run.server.advice.MeasureSize().total;
  StreamAuditResult streamed =
      AuditStreamed(run.app, run.server.trace, run.server.advice,
                    VerifierConfig{IsolationLevel::kSerializable, 1}, 10);
  ASSERT_TRUE(streamed.audit.accepted) << streamed.audit.reason;
  EXPECT_GT(streamed.epochs, 1u);
  EXPECT_LT(streamed.peak_resident_advice_bytes, full);
  EXPECT_GT(streamed.peak_resident_advice_bytes, 0u);
}

}  // namespace
}  // namespace karousos
