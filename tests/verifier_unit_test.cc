// Verifier-internals tests: each preprocessing check of Figures 14-16 is
// exercised with a surgically malformed piece of advice.
#include <gtest/gtest.h>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"
#include "src/kem/varid.h"

namespace karousos {
namespace {

// A two-handler app (request handler emits; child responds) for precise
// control over advice coordinates.
AppSpec MakeChainApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("chain_head", [](Ctx& ctx) {
    ctx.Emit("chain_next", ctx.Input());
  });
  program->DefineFunction("chain_tail", [](Ctx& ctx) {
    ctx.Respond(MvMakeMap({{"echo", MvField(ctx.Input(), "x")}}));
  });
  program->SetInit([](Ctx& ctx) {
    ctx.RegisterHandler(kRequestEventName, "chain_head");
    ctx.RegisterHandler("chain_next", "chain_tail");
  });
  return AppSpec{"chain", std::move(program)};
}

struct ChainRun {
  AppSpec app;
  ServerRunResult server;
};

ChainRun RunChain(int n = 4) {
  ChainRun run{MakeChainApp(), {}};
  std::vector<Value> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(MakeMap({{"x", i}}));
  }
  ServerConfig config;
  config.concurrency = 2;
  Server server(*run.app.program, config);
  run.server = server.Run(inputs);
  return run;
}

AuditResult Audit(ChainRun& run) {
  return AuditOnly(run.app, run.server.trace, run.server.advice,
                   IsolationLevel::kSerializable);
}

TEST(VerifierUnitTest, ChainAppAuditsCleanly) {
  ChainRun run = RunChain();
  AuditResult audit = Audit(run);
  EXPECT_TRUE(audit.accepted) << audit.reason;
  // 2 handlers per request, identical control flow -> 1 group, 2 executions.
  EXPECT_EQ(audit.stats.groups, 1u);
  EXPECT_EQ(audit.stats.handler_executions, 2u);
}

TEST(VerifierUnitTest, AdviceForInitHandlerRejected) {
  // rid 0 is the initialization pseudo-handler; advice may not claim ops
  // for it (the verifier re-creates init itself).
  ChainRun run = RunChain();
  run.server.advice.opcounts[{kInitRequestId, 0x77}] = 1;
  AuditResult audit = Audit(run);
  EXPECT_FALSE(audit.accepted);
}

TEST(VerifierUnitTest, OpcountWithReservedHandlerIdRejected) {
  ChainRun run = RunChain();
  run.server.advice.opcounts[{1, kInitHandlerId}] = 1;
  EXPECT_FALSE(Audit(run).accepted);
}

TEST(VerifierUnitTest, HandlerLogOpnumOutOfRangeRejected) {
  ChainRun run = RunChain();
  auto& log = run.server.advice.handler_logs.begin()->second;
  ASSERT_FALSE(log.empty());
  log.front().opnum = 999;
  AuditResult audit = Audit(run);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("out of range"), std::string::npos) << audit.reason;
}

TEST(VerifierUnitTest, DuplicateLogPositionsRejected) {
  // Two handler-log entries claiming the same (rid, hid, opnum).
  ChainRun run = RunChain();
  auto& log = run.server.advice.handler_logs.begin()->second;
  ASSERT_FALSE(log.empty());
  HandlerLogEntry dup = log.front();
  // Grow the opcount so a second entry at the same position isn't caught by
  // the range check first.
  log.push_back(dup);
  run.server.advice.opcounts[{run.server.advice.handler_logs.begin()->first, dup.hid}] += 1;
  AuditResult audit = Audit(run);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("same operation"), std::string::npos) << audit.reason;
}

TEST(VerifierUnitTest, RegistrationOfUnknownFunctionRejected) {
  ChainRun run = RunChain();
  auto& [rid, log] = *run.server.advice.handler_logs.begin();
  HandlerLogEntry bogus;
  bogus.kind = HandlerLogEntry::Kind::kRegister;
  bogus.hid = log.front().hid;
  bogus.opnum = log.front().opnum;  // Will collide, but the function check fires first?
  bogus.event = EventId("whatever");
  bogus.function = DigestOf("no_such_function");
  // Use a fresh opnum to isolate the unknown-function check.
  bogus.opnum = 2;
  run.server.advice.opcounts[{rid, bogus.hid}] = 2;
  log.push_back(bogus);
  AuditResult audit = Audit(run);
  EXPECT_FALSE(audit.accepted);
}

TEST(VerifierUnitTest, UnregisterWithoutRegisterRejected) {
  ChainRun run = RunChain();
  auto& [rid, log] = *run.server.advice.handler_logs.begin();
  HandlerLogEntry bogus;
  bogus.kind = HandlerLogEntry::Kind::kUnregister;
  bogus.hid = log.front().hid;
  bogus.opnum = 2;
  bogus.event = EventId("chain_next");
  bogus.function = DigestOf("chain_tail");  // Globally registered, not per-request.
  run.server.advice.opcounts[{rid, bogus.hid}] = 2;
  log.push_back(bogus);
  AuditResult audit = Audit(run);
  EXPECT_FALSE(audit.accepted);
}

TEST(VerifierUnitTest, MissingTagRejected) {
  ChainRun run = RunChain();
  run.server.advice.tags.erase(run.server.advice.tags.begin());
  AuditResult audit = Audit(run);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("tag"), std::string::npos) << audit.reason;
}

TEST(VerifierUnitTest, ResponseEmittedByWrongPositionRejected) {
  ChainRun run = RunChain();
  auto& [rid, by] = *run.server.advice.response_emitted_by.begin();
  by.second += 1;  // Claim the response was sent one op later.
  AuditResult audit = Audit(run);
  EXPECT_FALSE(audit.accepted);
  (void)rid;
}

TEST(VerifierUnitTest, TruncatedOpcountRejected) {
  // Claiming fewer ops than the handler really issues: re-execution trips
  // the "more operations than opcount" check.
  ChainRun run = RunChain();
  bool mutated = false;
  for (auto& [key, count] : run.server.advice.opcounts) {
    if (count > 0) {
      count -= 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(Audit(run).accepted);
}

TEST(VerifierUnitTest, ResponseBeforeRequestInTraceRejected) {
  ChainRun run = RunChain();
  // Move the first response event to the very front of the trace.
  auto& events = run.server.trace.events;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == TraceEvent::Kind::kResponse) {
      TraceEvent moved = events[i];
      events.erase(events.begin() + static_cast<long>(i));
      events.insert(events.begin(), moved);
      break;
    }
  }
  AuditResult audit = Audit(run);
  EXPECT_FALSE(audit.accepted);
  EXPECT_NE(audit.reason.find("balanced"), std::string::npos) << audit.reason;
}

TEST(VerifierUnitTest, TimePrecedenceOrderingIsEnforcedNotInvented) {
  // Epoch encoding must order resp(1) before req(3) (cycle if violated) but
  // must NOT order two responses against each other. We validate the
  // positive side end-to-end: sequential requests whose advice claims
  // forward reads are rejected (covered in soundness tests); here we check
  // an honest heavily-pipelined trace still passes.
  ChainRun run{MakeChainApp(), {}};
  std::vector<Value> inputs;
  for (int i = 0; i < 30; ++i) {
    inputs.push_back(MakeMap({{"x", i % 3}}));
  }
  ServerConfig config;
  config.concurrency = 10;
  Server server(*run.app.program, config);
  run.server = server.Run(inputs);
  AuditResult audit = Audit(run);
  EXPECT_TRUE(audit.accepted) << audit.reason;
}

TEST(VerifierUnitTest, AuditStatsMergeSumsEveryField) {
  AuditStats a;
  a.groups = 1;
  a.group_lane_total = 2;
  a.handler_executions = 3;
  a.handler_lanes = 4;
  a.ops_executed = 5;
  a.graph_nodes = 6;
  a.graph_edges = 7;
  a.var_dict_entries = 8;
  a.isolation_dg_nodes = 9;
  a.isolation_dg_edges = 10;
  AuditStats b;
  b.groups = 100;
  b.group_lane_total = 200;
  b.handler_executions = 300;
  b.handler_lanes = 400;
  b.ops_executed = 500;
  b.graph_nodes = 600;
  b.graph_edges = 700;
  b.var_dict_entries = 800;
  b.isolation_dg_nodes = 900;
  b.isolation_dg_edges = 1000;

  AuditStats ab = a;
  ab.Merge(b);
  EXPECT_EQ(ab.groups, 101u);
  EXPECT_EQ(ab.group_lane_total, 202u);
  EXPECT_EQ(ab.handler_executions, 303u);
  EXPECT_EQ(ab.handler_lanes, 404u);
  EXPECT_EQ(ab.ops_executed, 505u);
  EXPECT_EQ(ab.graph_nodes, 606u);
  EXPECT_EQ(ab.graph_edges, 707u);
  EXPECT_EQ(ab.var_dict_entries, 808u);
  EXPECT_EQ(ab.isolation_dg_nodes, 909u);
  EXPECT_EQ(ab.isolation_dg_edges, 1010u);

  // Commutative: merge order across group deltas must not matter.
  AuditStats ba = b;
  ba.Merge(a);
  EXPECT_EQ(ba.groups, ab.groups);
  EXPECT_EQ(ba.ops_executed, ab.ops_executed);
  EXPECT_EQ(ba.isolation_dg_edges, ab.isolation_dg_edges);

  // Merging a default block is the identity.
  AuditStats id = a;
  id.Merge(AuditStats{});
  EXPECT_EQ(id.groups, a.groups);
  EXPECT_EQ(id.var_dict_entries, a.var_dict_entries);
}

TEST(VerifierUnitTest, StatsReportDedupFactors) {
  ChainRun run = RunChain(12);
  AuditResult audit = Audit(run);
  ASSERT_TRUE(audit.accepted) << audit.reason;
  EXPECT_EQ(audit.stats.group_lane_total, 12u);
  EXPECT_EQ(audit.stats.handler_executions, 2u);
  EXPECT_EQ(audit.stats.handler_lanes, 24u);
  EXPECT_GT(audit.stats.graph_nodes, 24u);
  EXPECT_GT(audit.stats.graph_edges, audit.stats.graph_nodes / 2);
}

}  // namespace
}  // namespace karousos
