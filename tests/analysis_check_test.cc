// Streaming model checker tests: every checked-in KAR-SEG fixture must be
// rejected under its own rule, clean streams must check clean at every epoch
// size, the fast-reject pre-screen must stop a poisoned stream at the epoch
// where the defect lands, prescreen on/off must be verdict-identical on
// honest runs, and the pre-screen's carry state must survive a checkpoint
// round trip.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/audit/audit.h"
#include "src/audit/stream.h"
#include "src/verifier/session.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

// The fixture run's shape (tools/make_lint_fixture.cc): stacks, 40 requests,
// epoch size 7.
constexpr uint64_t kFixtureEpochSize = 7;

std::vector<uint8_t> ReadFixture(const std::string& name) {
  std::string path = std::string(KAROUSOS_FIXTURE_DIR) + "/seg/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

struct HonestRun {
  AppSpec app;
  ServerRunResult server;
};

HonestRun RunStacks(size_t requests = 63, int concurrency = 6) {
  HonestRun run{MakeStacksApp(), {}};
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = requests;
  wl.seed = 7;
  ServerConfig config;
  config.concurrency = concurrency;
  Server server(*run.app.program, config);
  run.server = server.Run(GenerateWorkload(wl));
  return run;
}

// --- Per-rule fixtures ------------------------------------------------------

class SegRuleFixture : public ::testing::TestWithParam<const char*> {};

TEST_P(SegRuleFixture, CheckerReportsThePlantedRule) {
  const std::string rule = GetParam();
  std::string stem = rule;
  for (char& c : stem) {
    c = static_cast<char>(std::tolower(c));
  }
  std::vector<uint8_t> trace_bytes = ReadFixture(stem + ".trace.kseg");
  std::vector<uint8_t> advice_bytes = ReadFixture(stem + ".advice.kseg");
  ASSERT_FALSE(trace_bytes.empty());
  ASSERT_FALSE(advice_bytes.empty());

  CheckResult check = CheckSegmentStreams(trace_bytes, advice_bytes, kFixtureEpochSize);
  EXPECT_FALSE(check.ok) << "fixture for " << rule << " checked clean";
  EXPECT_EQ(check.rule, rule) << check.reason;
  EXPECT_FALSE(check.reason.empty());

  // The full audit must reject too, and where it names a rule it must be the
  // same one — the pre-screen fires before any replay could decide otherwise.
  StreamAuditResult audited =
      AuditSegments(MakeStacksApp(), trace_bytes, advice_bytes,
                    VerifierConfig{IsolationLevel::kSerializable, 1}, kFixtureEpochSize);
  EXPECT_FALSE(audited.audit.accepted) << "audit accepted the " << rule << " fixture";
  if (!audited.audit.rule.empty()) {
    EXPECT_EQ(audited.audit.rule, rule) << audited.audit.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRules, SegRuleFixture,
                         ::testing::Values("KAR-SEG-001", "KAR-SEG-002", "KAR-SEG-003",
                                           "KAR-SEG-004", "KAR-SEG-005", "KAR-SEG-006",
                                           "KAR-SEG-007", "KAR-SEG-008", "KAR-SEG-009",
                                           "KAR-SEG-010"),
                         [](const ::testing::TestParamInfo<const char*>& param) {
                           std::string name = param.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Clean streams ----------------------------------------------------------

TEST(SegmentCheckTest, CleanStreamChecksCleanAtEveryEpochSize) {
  HonestRun run = RunStacks();
  for (uint64_t epoch_size : {uint64_t{1}, uint64_t{7}, uint64_t{0}}) {
    CheckResult r = CheckRun(run.server.trace, run.server.advice, epoch_size);
    EXPECT_TRUE(r.ok) << "epoch size " << epoch_size << ": " << r.reason;
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_EQ(r.rule, "");
  }
  EpochSlices slices = SliceRun(run.server.trace, run.server.advice, 7);
  CheckResult r = CheckSegmentStreams(EncodeTraceSegments(slices), EncodeAdviceSegments(slices), 7);
  EXPECT_TRUE(r.ok) << r.reason;
  EXPECT_EQ(r.epochs, slices.segments.size());
  EXPECT_EQ(r.frames, 2 * slices.segments.size());
}

// --- Prescreen equivalence on honest runs -----------------------------------

TEST(SegmentCheckTest, PrescreenOffMatchesOnForHonestRuns) {
  HonestRun run = RunStacks();
  for (uint64_t epoch_size : {uint64_t{1}, uint64_t{50}, uint64_t{0}}) {
    VerifierConfig on{IsolationLevel::kSerializable, 1};
    VerifierConfig off = on;
    off.prescreen = false;
    StreamAuditResult with =
        AuditStreamed(run.app, run.server.trace, run.server.advice, on, epoch_size);
    StreamAuditResult without =
        AuditStreamed(run.app, run.server.trace, run.server.advice, off, epoch_size);
    EXPECT_TRUE(with.audit.accepted) << with.audit.reason;
    EXPECT_EQ(with.audit.accepted, without.audit.accepted) << "epoch size " << epoch_size;
    EXPECT_EQ(with.audit.reason, without.audit.reason);
    EXPECT_EQ(with.audit.rule, without.audit.rule);
    ASSERT_EQ(with.audit.diagnostics.size(), without.audit.diagnostics.size());
    for (size_t i = 0; i < with.audit.diagnostics.size(); ++i) {
      EXPECT_EQ(with.audit.diagnostics[i].Format(), without.audit.diagnostics[i].Format());
    }
  }
}

// --- Fast reject mid-stream -------------------------------------------------

// A cross-epoch defect planted into epoch 2 must fix the verdict the moment
// epoch 2 is fed — the pre-screen decides before that epoch re-executes, and
// later epochs are never consumed.
TEST(SegmentCheckTest, FastRejectDecidesAtThePoisonedEpoch) {
  HonestRun run = RunStacks();
  EpochSlices slices = SliceRun(run.server.trace, run.server.advice, 7);
  ASSERT_GE(slices.segments.size(), 4u);
  ASSERT_FALSE(slices.segments[0].advice.opcounts.empty());
  slices.segments[2].advice.opcounts.insert(*slices.segments[0].advice.opcounts.begin());

  VerifierConfig config{IsolationLevel::kSerializable, 1};
  AuditSession session(*run.app.program, config, 7);
  EXPECT_TRUE(session.FeedEpoch(slices.segments[0]));
  EXPECT_TRUE(session.FeedEpoch(slices.segments[1]));
  EXPECT_FALSE(session.FeedEpoch(slices.segments[2]));  // Decided here.
  EXPECT_TRUE(session.decided());
  AuditResult result = session.Finish();
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.rule, kKarSeg005) << result.reason;

  // The standalone checker agrees, rule for rule.
  SegmentChecker checker(7);
  EXPECT_TRUE(checker.CheckEpoch(slices.segments[0]));
  EXPECT_TRUE(checker.CheckEpoch(slices.segments[1]));
  EXPECT_FALSE(checker.CheckEpoch(slices.segments[2]));
  CheckResult check = checker.Finish();
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.rule, kKarSeg005);
}

// --- Checkpoint round trip --------------------------------------------------

// The pre-screen's cross-epoch state must survive SaveCheckpoint/Restore: a
// claim first made in epoch 0 must still be remembered by the restored
// session when a later epoch re-claims it.
TEST(SegmentCheckTest, CheckpointPreservesCarriedClaims) {
  HonestRun run = RunStacks();
  EpochSlices slices = SliceRun(run.server.trace, run.server.advice, 7);
  ASSERT_GE(slices.segments.size(), 4u);
  const size_t last = slices.segments.size() - 1;
  ASSERT_FALSE(slices.segments[0].advice.opcounts.empty());
  slices.segments[last].advice.opcounts.insert(*slices.segments[0].advice.opcounts.begin());

  VerifierConfig config{IsolationLevel::kSerializable, 1};
  AuditSession session(*run.app.program, config, 7);
  EXPECT_TRUE(session.FeedEpoch(slices.segments[0]));
  EXPECT_TRUE(session.FeedEpoch(slices.segments[1]));
  std::string error;
  auto restored =
      AuditSession::Restore(*run.app.program, config, session.SaveCheckpoint(), &error);
  ASSERT_NE(restored, nullptr) << error;
  for (size_t i = 2; i <= last; ++i) {
    if (!restored->FeedEpoch(slices.segments[i])) {
      break;
    }
  }
  AuditResult result = restored->Finish();
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.rule, kKarSeg005) << result.reason;
}

}  // namespace
}  // namespace karousos
