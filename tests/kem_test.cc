// KEM building blocks: labels and the R-order predicate (§4.2, §5), handler
// ids, digests, and the function registry.
#include <gtest/gtest.h>

#include "src/common/digest.h"
#include "src/kem/label.h"
#include "src/kem/program.h"
#include "src/kem/varid.h"

namespace karousos {
namespace {

TEST(LabelTest, PrefixRelation) {
  HandlerLabel root{};
  HandlerLabel a{0};
  HandlerLabel a0{0, 0};
  HandlerLabel a1{0, 1};
  HandlerLabel b{1};
  EXPECT_TRUE(IsLabelPrefix(root, a));
  EXPECT_TRUE(IsLabelPrefix(a, a0));
  EXPECT_TRUE(IsLabelPrefix(a, a1));
  EXPECT_FALSE(IsLabelPrefix(a0, a1));
  EXPECT_FALSE(IsLabelPrefix(a1, a0));
  EXPECT_FALSE(IsLabelPrefix(b, a0));
  EXPECT_FALSE(IsLabelPrefix(a0, a));  // Longer labels are not prefixes of shorter.
  EXPECT_TRUE(IsLabelPrefix(a, a));    // Reflexive.
}

TEST(RorderTest, SameHandlerOrderedByOpnum) {
  HandlerLabel l{0};
  OpRef a{1, 7, 1};
  OpRef b{1, 7, 5};
  EXPECT_TRUE(RPrecedes(a, l, b, l));
  EXPECT_FALSE(RPrecedes(b, l, a, l));
  EXPECT_FALSE(RConcurrent(a, l, b, l));
}

TEST(RorderTest, AncestorPrecedesDescendant) {
  OpRef parent{1, 7, 3};
  OpRef child{1, 8, 1};
  HandlerLabel pl{0};
  HandlerLabel cl{0, 2};
  // Any op of the ancestor precedes any op of the descendant, regardless of
  // opnum (Definition 7: run-to-completion means the parent finished first).
  EXPECT_TRUE(RPrecedes(parent, pl, child, cl));
  EXPECT_FALSE(RPrecedes(child, cl, parent, pl));
}

TEST(RorderTest, SiblingsAreRConcurrent) {
  OpRef a{1, 7, 1};
  OpRef b{1, 8, 1};
  HandlerLabel la{0, 0};
  HandlerLabel lb{0, 1};
  EXPECT_TRUE(RConcurrent(a, la, b, lb));
}

TEST(RorderTest, DifferentRequestsAreRConcurrent) {
  OpRef a{1, 7, 1};
  OpRef b{2, 7, 1};
  HandlerLabel l{0};
  EXPECT_TRUE(RConcurrent(a, l, b, l));
}

TEST(RorderTest, InitPrecedesEverything) {
  OpRef init{kInitRequestId, kInitHandlerId, 5};
  OpRef op{42, 7, 1};
  HandlerLabel none{};
  HandlerLabel l{3, 1};
  EXPECT_TRUE(RPrecedes(init, none, op, l));
  EXPECT_FALSE(RPrecedes(op, l, init, none));
}

TEST(HandlerIdTest, StructuralAndStable) {
  FunctionId f1 = DigestOf("handler_one");
  FunctionId f2 = DigestOf("handler_two");
  EXPECT_EQ(ComputeHandlerId(f1, kNoHandler, 0), ComputeHandlerId(f1, kNoHandler, 0));
  EXPECT_NE(ComputeHandlerId(f1, kNoHandler, 0), ComputeHandlerId(f2, kNoHandler, 0));
  HandlerId parent = ComputeHandlerId(f1, kNoHandler, 0);
  EXPECT_NE(ComputeHandlerId(f2, parent, 1), ComputeHandlerId(f2, parent, 2));
  EXPECT_NE(ComputeHandlerId(f2, parent, 1), ComputeHandlerId(f2, kNoHandler, 1));
}

TEST(DigestTest, OrderSensitivity) {
  Digest a;
  a.Update(uint64_t{1});
  a.Update(uint64_t{2});
  Digest b;
  b.Update(uint64_t{2});
  b.Update(uint64_t{1});
  EXPECT_NE(a.Finish(), b.Finish());
}

TEST(DigestTest, StringsAreLengthDelimited) {
  Digest a;
  a.Update("ab");
  a.Update("c");
  Digest b;
  b.Update("a");
  b.Update("bc");
  EXPECT_NE(a.Finish(), b.Finish());
}

TEST(DigestTest, UnorderedCombineIsCommutative) {
  uint64_t x = DigestOf("x");
  uint64_t y = DigestOf("y");
  uint64_t z = DigestOf("z");
  uint64_t abc = CombineUnordered(CombineUnordered(CombineUnordered(0, x), y), z);
  uint64_t cba = CombineUnordered(CombineUnordered(CombineUnordered(0, z), y), x);
  EXPECT_EQ(abc, cba);
  EXPECT_NE(abc, CombineUnordered(CombineUnordered(0, x), y));
}

TEST(VarIdTest, ScopesAndRequestsAreDisjoint) {
  EXPECT_NE(ResolveVarId("v", VarScope::kGlobal, 0), ResolveVarId("v", VarScope::kUntracked, 0));
  EXPECT_NE(ResolveVarId("v", VarScope::kRequest, 1), ResolveVarId("v", VarScope::kRequest, 2));
  EXPECT_EQ(ResolveVarId("v", VarScope::kGlobal, 1), ResolveVarId("v", VarScope::kGlobal, 2));
  EXPECT_NE(ResolveVarId("v", VarScope::kGlobal, 0), ResolveVarId("w", VarScope::kGlobal, 0));
}

TEST(ProgramTest, FunctionLookup) {
  Program program;
  program.DefineFunction("alpha", [](Ctx&) {});
  program.DefineFunction("beta", [](Ctx&) {});
  EXPECT_NE(program.FindFunctionByName("alpha"), nullptr);
  EXPECT_EQ(program.FindFunctionByName("alpha")->name, "alpha");
  EXPECT_EQ(program.FindFunctionByName("gamma"), nullptr);
  EXPECT_EQ(program.FindFunction(DigestOf("beta"))->id, DigestOf("beta"));
  EXPECT_EQ(program.functions().size(), 2u);
}

}  // namespace
}  // namespace karousos
