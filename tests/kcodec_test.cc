// Storage-class codec primitives (src/common/kcodec.h): zigzag/delta lanes,
// per-segment dictionaries, and the LZ4-style block codec. Every malformed
// input must decode to nullopt — never crash, never over-allocate — because a
// compressed frame is untrusted server output.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/common/kcodec.h"
#include "src/common/serde.h"

namespace karousos {
namespace {

TEST(ZigzagTest, RoundTripsEdgeValues) {
  const int64_t cases[] = {0, 1, -1, 2, -2, 63, -64, (int64_t)1 << 40, -((int64_t)1 << 40),
                           INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v) << v;
  }
  // Small magnitudes map to small codes (the property the lanes rely on).
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

TEST(DeltaLaneTest, MonotoneLaneEncodesOneByteSteps) {
  ByteWriter out;
  uint64_t prev = 0;
  for (uint64_t v = 100; v < 164; ++v) {
    WriteDelta(&out, v, &prev);
  }
  // First value costs two bytes (zigzag(100) = 200); every step after is one.
  EXPECT_EQ(out.size(), 65u);

  ByteReader in(out.bytes());
  prev = 0;
  for (uint64_t v = 100; v < 164; ++v) {
    auto got = ReadDelta(&in, &prev);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(in.AtEnd());
}

TEST(DeltaLaneTest, RegressionsAndWraparoundRoundTrip) {
  const uint64_t values[] = {5, 2, 900, 1, 0, UINT64_MAX, 3, UINT64_MAX - 1};
  ByteWriter out;
  uint64_t prev = 0;
  for (uint64_t v : values) {
    WriteDelta(&out, v, &prev);
  }
  ByteReader in(out.bytes());
  prev = 0;
  for (uint64_t v : values) {
    auto got = ReadDelta(&in, &prev);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
}

TEST(DictTest, U64DictInternsInFirstUseOrder) {
  U64DictBuilder dict;
  EXPECT_EQ(dict.Ref(0xdeadbeef), 0u);
  EXPECT_EQ(dict.Ref(42), 1u);
  EXPECT_EQ(dict.Ref(0xdeadbeef), 0u);
  EXPECT_EQ(dict.Ref(7), 2u);
  EXPECT_EQ(dict.size(), 3u);

  ByteWriter out;
  dict.Serialize(&out);
  ByteReader in(out.bytes());
  auto table = ReadU64Dict(&in);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(*table, (std::vector<uint64_t>{0xdeadbeef, 42, 7}));
  EXPECT_TRUE(in.AtEnd());
}

TEST(DictTest, StringDictInternsInFirstUseOrder) {
  StringDictBuilder dict;
  EXPECT_EQ(dict.Ref("bid"), 0u);
  EXPECT_EQ(dict.Ref("item:4"), 1u);
  EXPECT_EQ(dict.Ref("bid"), 0u);
  EXPECT_EQ(dict.size(), 2u);

  ByteWriter out;
  dict.Serialize(&out);
  ByteReader in(out.bytes());
  auto table = ReadStringDict(&in);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(*table, (std::vector<std::string>{"bid", "item:4"}));
}

TEST(DictTest, TruncatedAndOversizedDictsReject) {
  U64DictBuilder dict;
  dict.Ref(1);
  dict.Ref(2);
  ByteWriter out;
  dict.Serialize(&out);
  std::vector<uint8_t> bytes = out.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader in(bytes.data(), cut);
    EXPECT_FALSE(ReadU64Dict(&in).has_value()) << "cut at " << cut;
  }
  // A forged huge count must reject before sizing any allocation from it.
  ByteWriter forged;
  forged.WriteVarint(uint64_t{1} << 60);
  ByteReader in(forged.bytes());
  EXPECT_FALSE(ReadU64Dict(&in).has_value());
  ByteReader in2(forged.bytes());
  EXPECT_FALSE(ReadStringDict(&in2).has_value());
}

std::vector<uint8_t> RoundTripBlock(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> stored = BlockFrameEncode(data);
  auto back = BlockFrameDecode(stored);
  EXPECT_TRUE(back.has_value());
  return back ? *back : std::vector<uint8_t>{};
}

TEST(BlockCodecTest, RoundTripsEmptyAndTiny) {
  EXPECT_EQ(RoundTripBlock({}), std::vector<uint8_t>{});
  EXPECT_EQ(RoundTripBlock({0x42}), std::vector<uint8_t>{0x42});
  std::vector<uint8_t> tiny{1, 2, 3};
  EXPECT_EQ(RoundTripBlock(tiny), tiny);
}

TEST(BlockCodecTest, RepetitiveInputShrinksAndRoundTrips) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 400; ++i) {
    const char* s = "put:auction/item-17 ";
    data.insert(data.end(), s, s + 20);
  }
  std::vector<uint8_t> stored = BlockFrameEncode(data);
  EXPECT_LT(stored.size(), data.size() / 4) << "repetitive payload should compress hard";
  auto back = BlockFrameDecode(stored);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(BlockCodecTest, OverlappingMatchesRoundTrip) {
  // Period-3 run: matches with offset 3 and length >> 3 force the
  // overlap-safe byte-by-byte copy path.
  std::vector<uint8_t> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(static_cast<uint8_t>("abc"[i % 3]));
  }
  EXPECT_EQ(RoundTripBlock(data), data);
  // RLE extreme: a single repeated byte (offset-1 match).
  std::vector<uint8_t> ones(5000, 0xaa);
  std::vector<uint8_t> stored = BlockFrameEncode(ones);
  EXPECT_LT(stored.size(), 64u);
  EXPECT_EQ(RoundTripBlock(ones), ones);
}

TEST(BlockCodecTest, IncompressibleInputRoundTrips) {
  std::mt19937_64 rng(7);
  std::vector<uint8_t> data(4096);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng());
  }
  EXPECT_EQ(RoundTripBlock(data), data);
}

TEST(BlockCodecTest, StructuredAdviceLikeBytesRoundTrip) {
  // Interleave varint-ish small integers with fixed64 digests, the shape of
  // a real advice payload.
  std::mt19937_64 rng(11);
  ByteWriter w;
  for (int i = 0; i < 2000; ++i) {
    w.WriteVarint(static_cast<uint64_t>(i));
    w.WriteFixed64(rng() % 16);  // Few distinct digests: compressible.
  }
  EXPECT_EQ(RoundTripBlock(w.bytes()), w.bytes());
}

TEST(BlockCodecTest, TruncationAtEveryByteRejects) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 64; ++i) {
    data.push_back(static_cast<uint8_t>(i % 7));
  }
  std::vector<uint8_t> stored = BlockFrameEncode(data);
  for (size_t cut = 0; cut < stored.size(); ++cut) {
    auto out = BlockFrameDecode(stored.data(), cut);
    EXPECT_FALSE(out.has_value()) << "truncated stored block accepted at " << cut;
  }
}

TEST(BlockCodecTest, DeclaredSizeMismatchRejects) {
  std::vector<uint8_t> data(300, 0x55);
  std::vector<uint8_t> stored = BlockFrameEncode(data);
  // The decoded-size varint leads the stored form; 300 encodes as two bytes
  // (0xac 0x02). Nudging it up or down must reject: the decoder requires the
  // sequences to produce exactly the declared byte count.
  std::vector<uint8_t> up = stored;
  up[0] = static_cast<uint8_t>(up[0] + 1);
  EXPECT_FALSE(BlockFrameDecode(up).has_value());
  std::vector<uint8_t> down = stored;
  down[0] = static_cast<uint8_t>(down[0] - 1);
  EXPECT_FALSE(BlockFrameDecode(down).has_value());
}

TEST(BlockCodecTest, ForgedHugeDeclaredSizeRejectsBeforeAllocating) {
  ByteWriter w;
  w.WriteVarint(uint64_t{1} << 50);
  w.WriteByte(0);  // One empty final sequence.
  EXPECT_FALSE(BlockFrameDecode(w.bytes()).has_value());
}

TEST(BlockCodecTest, BadOffsetsReject) {
  // Hand-built sequence: 4 literals then a match reaching before the start.
  ByteWriter w;
  w.WriteVarint(12);      // Declared decoded size.
  w.WriteByte(0x40);      // Token: 4 literals, match_len 4.
  w.WriteByte('a');
  w.WriteByte('b');
  w.WriteByte('c');
  w.WriteByte('d');
  w.WriteByte(9);         // Offset 9 > 4 bytes produced so far.
  w.WriteByte(0);
  w.WriteByte(0x40);      // Terminator would go here; never reached.
  EXPECT_FALSE(BlockFrameDecode(w.bytes()).has_value());

  // Offset 0 is equally invalid.
  ByteWriter z;
  z.WriteVarint(12);
  z.WriteByte(0x40);
  z.WriteByte('a');
  z.WriteByte('b');
  z.WriteByte('c');
  z.WriteByte('d');
  z.WriteByte(0);
  z.WriteByte(0);
  EXPECT_FALSE(BlockFrameDecode(z.bytes()).has_value());
}

TEST(KsegCompressionTest, FlagsRoundTrip) {
  for (uint8_t flags = 0; flags <= kFrameFlagsKnownMask; ++flags) {
    KsegCompression c = KsegCompression::FromFlags(flags);
    EXPECT_EQ(c.Flags(), flags);
    EXPECT_EQ(c.any(), flags != 0);
  }
  KsegCompression all = KsegCompression::All();
  EXPECT_EQ(all.Flags(), kFrameFlagsKnownMask);
}

}  // namespace
}  // namespace karousos
