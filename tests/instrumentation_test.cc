// Instrumentation-invariance tests: collecting advice must never change what
// the application computes — only what it costs. These guard the premise of
// every mode comparison in the evaluation.
#include <gtest/gtest.h>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

TEST(InstrumentationTest, AppWorkResultsIdenticalAcrossModes) {
  // The simulated app work (taxed at the instrumented server, plain at the
  // unmodified one, memoized at the verifier) must produce bit-identical
  // results, or responses would differ between modes.
  std::vector<Value> inputs = {MakeMap({{"op", "get"}, {"day", "mon"}}),
                               MakeMap({{"op", "set"}, {"day", "mon"}, {"msg", "payload"}}),
                               MakeMap({{"op", "get"}, {"day", "mon"}})};
  std::vector<Value> responses[3];
  int idx = 0;
  for (CollectMode mode : {CollectMode::kOff, CollectMode::kKarousos, CollectMode::kOrochi}) {
    AppSpec app = MakeMotdApp();
    ServerConfig config;
    config.mode = mode;
    config.concurrency = 1;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(inputs);
    for (RequestId rid : run.trace.RequestIds()) {
      responses[idx].push_back(*run.trace.Response(rid));
    }
    ++idx;
  }
  EXPECT_EQ(responses[0], responses[1]);
  EXPECT_EQ(responses[1], responses[2]);
  // And the etag really is the AppWork product (non-empty hex string).
  EXPECT_TRUE(responses[0][0].Field("etag").is_string());
  EXPECT_FALSE(responses[0][0].Field("etag").AsString().empty());
}

TEST(InstrumentationTest, VerifierAppWorkMatchesServer) {
  // The verifier's memoized evaluation feeds re-executed responses; if it
  // computed anything different from the server's taxed loop, every audit
  // would reject on response mismatch. Exercise explicitly at group width >1.
  AppSpec app = MakeMotdApp();
  std::vector<Value> inputs;
  for (int i = 0; i < 16; ++i) {
    inputs.push_back(MakeMap({{"op", "get"}, {"day", "tue"}}));
  }
  ServerConfig config;
  config.concurrency = 4;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  EXPECT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.audit.stats.groups, 1u);
}

TEST(InstrumentationTest, AdviceSpoolGrowsWithLogging) {
  // The spool (streamed advice) must be empty for the unmodified server and
  // larger for log-all than for R-concurrent-only logging.
  WorkloadConfig wl;
  wl.app = "wiki";
  wl.kind = WorkloadKind::kWikiMix;
  wl.requests = 80;
  wl.connections = 8;
  std::vector<Value> inputs = GenerateWorkload(wl);
  size_t spool[3];
  int idx = 0;
  for (CollectMode mode : {CollectMode::kOff, CollectMode::kKarousos, CollectMode::kOrochi}) {
    AppSpec app = MakeWikiApp();
    ServerConfig config;
    config.mode = mode;
    config.concurrency = 8;
    Server server(*app.program, config);
    spool[idx++] = server.Run(inputs).advice_spool_bytes;
  }
  EXPECT_EQ(spool[0], 0u);
  EXPECT_GT(spool[1], 0u);
  EXPECT_GT(spool[2], spool[1]);
}

TEST(InstrumentationTest, WarmupTimingExcludesWarmupServing) {
  AppSpec app = MakeMotdApp();
  WorkloadConfig wl;
  wl.app = "motd";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 200;
  std::vector<Value> inputs = GenerateWorkload(wl);
  ServerConfig warm;
  warm.concurrency = 4;
  warm.warmup_requests = 150;
  Server warm_server(*app.program, warm);
  double warm_time = warm_server.Run(inputs).serve_seconds;
  AppSpec app2 = MakeMotdApp();
  ServerConfig full;
  full.concurrency = 4;
  Server full_server(*app2.program, full);
  double full_time = full_server.Run(inputs).serve_seconds;
  // Timing noise aside, serving 50 post-warmup requests cannot take longer
  // than serving all 200 by any meaningful margin.
  EXPECT_LT(warm_time, full_time * 1.05 + 0.005);
}

TEST(InstrumentationTest, WorkCountersAreConsistent) {
  AppSpec app = MakeStacksApp();
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 60;
  ServerConfig config;
  config.concurrency = 6;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));
  EXPECT_GT(run.handler_activations, 60u);  // Submits/lists spawn children.
  EXPECT_GT(run.ops_executed, run.handler_activations);
  EXPECT_GT(run.var_accesses, 0u);
  EXPECT_GE(run.var_accesses, run.var_log_entries);
  EXPECT_EQ(run.var_log_entries, run.advice.var_log_entry_count());
  EXPECT_GT(run.state_ops, 0u);
}

}  // namespace
}  // namespace karousos
