// Determinism oracle for the parallel audit engine: for every example app and
// workload, Audit at threads ∈ {1, 2, 4, 8} must produce a result that is
// bit-identical to the serial path — verdict, rejection reason, rule ID,
// diagnostics (text and order), and every stats counter. This must hold on
// accepting AND rejecting inputs: which rejection fires first is part of the
// contract (the merge order, not the thread schedule, decides it).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

ServerRunResult Serve(const AppSpec& app, const std::string& name, WorkloadKind kind,
                      size_t requests, int concurrency, uint64_t seed = 1) {
  WorkloadConfig wl;
  wl.app = name;
  wl.kind = kind;
  wl.requests = requests;
  wl.seed = seed;
  wl.connections = concurrency;
  ServerConfig config;
  config.concurrency = concurrency;
  config.seed = seed;
  Server server(*app.program, config);
  return server.Run(GenerateWorkload(wl));
}

void ExpectIdentical(const AuditResult& serial, const AuditResult& parallel, unsigned threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(serial.accepted, parallel.accepted);
  EXPECT_EQ(serial.reason, parallel.reason);
  EXPECT_EQ(serial.rule, parallel.rule);
  ASSERT_EQ(serial.diagnostics.size(), parallel.diagnostics.size());
  for (size_t i = 0; i < serial.diagnostics.size(); ++i) {
    EXPECT_EQ(serial.diagnostics[i].Format(), parallel.diagnostics[i].Format());
  }
  EXPECT_EQ(serial.stats.groups, parallel.stats.groups);
  EXPECT_EQ(serial.stats.group_lane_total, parallel.stats.group_lane_total);
  EXPECT_EQ(serial.stats.handler_executions, parallel.stats.handler_executions);
  EXPECT_EQ(serial.stats.handler_lanes, parallel.stats.handler_lanes);
  EXPECT_EQ(serial.stats.ops_executed, parallel.stats.ops_executed);
  EXPECT_EQ(serial.stats.graph_nodes, parallel.stats.graph_nodes);
  EXPECT_EQ(serial.stats.graph_edges, parallel.stats.graph_edges);
  EXPECT_EQ(serial.stats.var_dict_entries, parallel.stats.var_dict_entries);
  EXPECT_EQ(serial.stats.isolation_dg_nodes, parallel.stats.isolation_dg_nodes);
  EXPECT_EQ(serial.stats.isolation_dg_edges, parallel.stats.isolation_dg_edges);
}

// Audits (trace, advice) at 1, 2, 4, and 8 threads and requires all four
// results identical. Returns the serial result for further assertions.
AuditResult ExpectAllThreadCountsAgree(const AppSpec& app, const Trace& trace,
                                       const Advice& advice) {
  AuditResult serial =
      AuditOnly(app, trace, advice, VerifierConfig{IsolationLevel::kSerializable, 1});
  for (unsigned threads : {2u, 4u, 8u}) {
    AuditResult parallel =
        AuditOnly(app, trace, advice, VerifierConfig{IsolationLevel::kSerializable, threads});
    ExpectIdentical(serial, parallel, threads);
  }
  return serial;
}

TEST(ParallelAuditTest, MotdMixedAccepts) {
  AppSpec app = MakeMotdApp();
  ServerRunResult run = Serve(app, "motd", WorkloadKind::kMixed, 60, 8);
  AuditResult serial = ExpectAllThreadCountsAgree(app, run.trace, run.advice);
  EXPECT_TRUE(serial.accepted) << serial.reason;
  EXPECT_GT(serial.stats.groups, 1u) << "workload produced a single group; sweep is vacuous";
}

TEST(ParallelAuditTest, StacksMixedAccepts) {
  AppSpec app = MakeStacksApp();
  ServerRunResult run = Serve(app, "stacks", WorkloadKind::kMixed, 60, 8);
  AuditResult serial = ExpectAllThreadCountsAgree(app, run.trace, run.advice);
  EXPECT_TRUE(serial.accepted) << serial.reason;
  EXPECT_GT(serial.stats.groups, 1u);
}

TEST(ParallelAuditTest, WikiMixAccepts) {
  AppSpec app = MakeWikiApp();
  ServerRunResult run = Serve(app, "wiki", WorkloadKind::kWikiMix, 60, 8);
  AuditResult serial = ExpectAllThreadCountsAgree(app, run.trace, run.advice);
  EXPECT_TRUE(serial.accepted) << serial.reason;
  EXPECT_GT(serial.stats.groups, 1u);
}

TEST(ParallelAuditTest, ZeroMeansHardwareThreadsAndStillAgrees) {
  AppSpec app = MakeMotdApp();
  ServerRunResult run = Serve(app, "motd", WorkloadKind::kMixed, 40, 4);
  AuditResult serial =
      AuditOnly(app, run.trace, run.advice, VerifierConfig{IsolationLevel::kSerializable, 1});
  AuditResult hw =
      AuditOnly(app, run.trace, run.advice, VerifierConfig{IsolationLevel::kSerializable, 0});
  ExpectIdentical(serial, hw, 0);
  EXPECT_TRUE(serial.accepted) << serial.reason;
}

TEST(ParallelAuditTest, MoreThreadsThanGroupsAgrees) {
  // Thread count far above the group count: the pool clamps to the group
  // count, and nothing about the result may change.
  AppSpec app = MakeMotdApp();
  ServerRunResult run = Serve(app, "motd", WorkloadKind::kMixed, 10, 2);
  AuditResult serial =
      AuditOnly(app, run.trace, run.advice, VerifierConfig{IsolationLevel::kSerializable, 1});
  AuditResult wide =
      AuditOnly(app, run.trace, run.advice, VerifierConfig{IsolationLevel::kSerializable, 64});
  ExpectIdentical(serial, wide, 64);
  EXPECT_TRUE(serial.accepted) << serial.reason;
}

// --- Rejecting inputs: the first rejection (reason and all) must be the ----
// --- same at every thread count. ------------------------------------------

TEST(ParallelAuditTest, ForgedResponseRejectsIdentically) {
  AppSpec app = MakeMotdApp();
  ServerRunResult run = Serve(app, "motd", WorkloadKind::kMixed, 60, 8);
  for (TraceEvent& ev : run.trace.events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"msg", "forged"}});
      break;
    }
  }
  AuditResult serial = ExpectAllThreadCountsAgree(app, run.trace, run.advice);
  EXPECT_FALSE(serial.accepted);
  EXPECT_FALSE(serial.reason.empty());
}

TEST(ParallelAuditTest, TamperedVarLogRejectsIdentically) {
  AppSpec app = MakeMotdApp();
  ServerRunResult run = Serve(app, "motd", WorkloadKind::kMixed, 60, 8);
  bool mutated = false;
  for (auto& [vid, log] : run.advice.var_logs) {
    for (auto& [op, entry] : log) {
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        entry.value = Value("poisoned");
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  ASSERT_TRUE(mutated);
  AuditResult serial = ExpectAllThreadCountsAgree(app, run.trace, run.advice);
  EXPECT_FALSE(serial.accepted);
}

TEST(ParallelAuditTest, InflatedOpcountRejectsIdentically) {
  AppSpec app = MakeStacksApp();
  ServerRunResult run = Serve(app, "stacks", WorkloadKind::kMixed, 60, 8);
  ASSERT_FALSE(run.advice.opcounts.empty());
  run.advice.opcounts.begin()->second += 1;
  AuditResult serial = ExpectAllThreadCountsAgree(app, run.trace, run.advice);
  EXPECT_FALSE(serial.accepted);
}

TEST(ParallelAuditTest, WrongGroupTagRejectsIdentically) {
  // A tag mutation makes some group internally inconsistent. The group that
  // rejects — and therefore the reason — must not depend on the schedule.
  AppSpec app = MakeMotdApp();
  ServerRunResult run = Serve(app, "motd", WorkloadKind::kMixed, 60, 8);
  RequestId set_rid = 0;
  RequestId get_rid = 0;
  for (const TraceEvent& ev : run.trace.events) {
    if (ev.kind != TraceEvent::Kind::kRequest) {
      continue;
    }
    if (ev.payload.Field("op") == Value("set") && set_rid == 0) {
      set_rid = ev.rid;
    }
    if (ev.payload.Field("op") == Value("get") && get_rid == 0) {
      get_rid = ev.rid;
    }
  }
  ASSERT_NE(set_rid, 0u);
  ASSERT_NE(get_rid, 0u);
  run.advice.tags[set_rid] = run.advice.tags[get_rid];
  AuditResult serial = ExpectAllThreadCountsAgree(app, run.trace, run.advice);
  EXPECT_FALSE(serial.accepted);
}

TEST(ParallelAuditTest, DroppedHandlerLogRejectsIdentically) {
  AppSpec app = MakeStacksApp();
  ServerRunResult run = Serve(app, "stacks", WorkloadKind::kMixed, 60, 8);
  bool mutated = false;
  for (auto& [rid, log] : run.advice.handler_logs) {
    if (!log.empty()) {
      log.pop_back();
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  AuditResult serial = ExpectAllThreadCountsAgree(app, run.trace, run.advice);
  EXPECT_FALSE(serial.accepted);
}

TEST(ParallelAuditTest, RepeatedParallelAuditsAreStable) {
  // Same (trace, advice), audited at threads=4 five times: every run must
  // return the very same result (no dependence on OS scheduling).
  AppSpec app = MakeWikiApp();
  ServerRunResult run = Serve(app, "wiki", WorkloadKind::kWikiMix, 60, 8);
  AuditResult first =
      AuditOnly(app, run.trace, run.advice, VerifierConfig{IsolationLevel::kSerializable, 4});
  for (int i = 0; i < 4; ++i) {
    AuditResult again =
        AuditOnly(app, run.trace, run.advice, VerifierConfig{IsolationLevel::kSerializable, 4});
    ExpectIdentical(first, again, 4);
  }
}

}  // namespace
}  // namespace karousos
