// Adversarial tests for the parallel audit engine: every advice mutation that
// the serial verifier rejects must still be rejected at threads=4 — with the
// same rule ID and reason — and wrong tags must never cause wrong acceptance
// in parallel mode. Soundness (§2.1) does not get to depend on the schedule:
// a misbehaving server cannot escape the audit by hoping its forged group
// lands on a lucky thread.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"
#include "src/kem/varid.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct HonestRun {
  AppSpec app;
  ServerRunResult server;
};

HonestRun RunMotd(int concurrency = 4) {
  HonestRun run{MakeMotdApp(), {}};
  WorkloadConfig wl;
  wl.app = "motd";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 40;
  ServerConfig config;
  config.concurrency = concurrency;
  Server server(*run.app.program, config);
  run.server = server.Run(GenerateWorkload(wl));
  return run;
}

HonestRun RunStacks(int concurrency = 8) {
  HonestRun run{MakeStacksApp(), {}};
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 60;
  ServerConfig config;
  config.concurrency = concurrency;
  Server server(*run.app.program, config);
  run.server = server.Run(GenerateWorkload(wl));
  return run;
}

// The soundness contract under parallelism: serial rejects => parallel
// rejects with the identical rule and reason.
void ExpectRejectsIdentically(const HonestRun& run) {
  AuditResult serial = AuditOnly(run.app, run.server.trace, run.server.advice,
                                 VerifierConfig{IsolationLevel::kSerializable, 1});
  ASSERT_FALSE(serial.accepted) << "mutation was not rejected by the serial oracle";
  AuditResult parallel = AuditOnly(run.app, run.server.trace, run.server.advice,
                                   VerifierConfig{IsolationLevel::kSerializable, 4});
  EXPECT_FALSE(parallel.accepted);
  EXPECT_EQ(serial.reason, parallel.reason);
  EXPECT_EQ(serial.rule, parallel.rule);
}

TEST(ParallelAdversarialTest, ForgedResponse) {
  HonestRun run = RunMotd();
  for (TraceEvent& ev : run.server.trace.events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"msg", "forged"}});
      break;
    }
  }
  ExpectRejectsIdentically(run);
}

TEST(ParallelAdversarialTest, TamperedVarLogWriteValue) {
  HonestRun run = RunMotd();
  bool mutated = false;
  for (auto& [vid, log] : run.server.advice.var_logs) {
    for (auto& [op, entry] : log) {
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        entry.value = Value("poisoned");
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  ASSERT_TRUE(mutated);
  ExpectRejectsIdentically(run);
}

TEST(ParallelAdversarialTest, GhostVarLogEntry) {
  HonestRun run = RunMotd();
  VarId vid = ResolveVarId("motd", VarScope::kGlobal, 0);
  VarLogEntry ghost;
  ghost.kind = VarLogEntry::Kind::kWrite;
  ghost.value = Value("ghost");
  ghost.prec = kNilOp;
  run.server.advice.var_logs[vid].emplace(OpRef{1, 0x1234, 77}, ghost);
  ExpectRejectsIdentically(run);
}

TEST(ParallelAdversarialTest, DroppedHandlerLogEntry) {
  HonestRun run = RunStacks();
  bool mutated = false;
  for (auto& [rid, log] : run.server.advice.handler_logs) {
    if (!log.empty()) {
      log.pop_back();
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  ExpectRejectsIdentically(run);
}

TEST(ParallelAdversarialTest, InflatedOpcount) {
  HonestRun run = RunMotd();
  ASSERT_FALSE(run.server.advice.opcounts.empty());
  run.server.advice.opcounts.begin()->second += 1;
  ExpectRejectsIdentically(run);
}

TEST(ParallelAdversarialTest, MissingResponseEmittedBy) {
  HonestRun run = RunMotd();
  ASSERT_FALSE(run.server.advice.response_emitted_by.empty());
  run.server.advice.response_emitted_by.erase(run.server.advice.response_emitted_by.begin());
  ExpectRejectsIdentically(run);
}

TEST(ParallelAdversarialTest, ForgedConflictMarker) {
  HonestRun run = RunStacks();
  OpRef op{};
  bool found = false;
  for (const auto& [txn, log] : run.server.advice.tx_logs) {
    for (const TxOperation& entry : log) {
      if (entry.type == TxOpType::kGet) {
        op = OpRef{txn.rid, entry.hid, entry.opnum};
        found = true;
        break;
      }
    }
    if (found) {
      break;
    }
  }
  ASSERT_TRUE(found);
  run.server.advice.nondet[op] = NondetRecord{NondetRecord::Kind::kConflict, Value()};
  ExpectRejectsIdentically(run);
}

TEST(ParallelAdversarialTest, SwappedWriteOrder) {
  AppSpec app = MakeStacksApp();
  std::vector<Value> inputs = {
      MakeMap({{"op", "submit"}, {"dump", "once"}}),
      MakeMap({{"op", "submit"}, {"dump", "once"}}),
  };
  ServerConfig config;
  config.concurrency = 1;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);
  ASSERT_GE(run.advice.write_order.size(), 2u);
  std::swap(run.advice.write_order.front(), run.advice.write_order.back());
  ExpectRejectsIdentically(HonestRun{std::move(app), std::move(run)});
}

TEST(ParallelAdversarialTest, GetClaimedNotFound) {
  HonestRun run = RunStacks();
  bool mutated = false;
  for (auto& [txn, log] : run.server.advice.tx_logs) {
    for (TxOperation& op : log) {
      if (op.type == TxOpType::kGet && op.get_found) {
        op.get_found = false;
        op.get_from = kNilTxOp;
        mutated = true;
        break;
      }
    }
    if (mutated) {
      break;
    }
  }
  if (!mutated) {
    GTEST_SKIP() << "no found GET in this schedule";
  }
  ExpectRejectsIdentically(run);
}

// --- Wrong tags: the attack surface the parallel engine widens if groups ---
// --- could observe each other. They must only ever cause rejection. --------

TEST(ParallelAdversarialTest, WrongTagNeverCausesWrongAcceptance) {
  // Sweep several forged tag assignments; each must reject in parallel mode
  // exactly as serially. (Acceptance would mean a group observed state it
  // must not — the soundness failure mode of a buggy merge.)
  for (uint64_t mutation = 0; mutation < 6; ++mutation) {
    SCOPED_TRACE("mutation=" + std::to_string(mutation));
    HonestRun run = RunMotd(8);
    ASSERT_GE(run.server.advice.tags.size(), 8u);
    auto it = run.server.advice.tags.begin();
    std::advance(it, mutation);
    auto jt = run.server.advice.tags.rbegin();
    if (it->second == jt->second) {
      continue;  // Same group already; moving it is a no-op.
    }
    it->second = jt->second;  // Force the request into an alien group.
    AuditResult serial = AuditOnly(run.app, run.server.trace, run.server.advice,
                                   VerifierConfig{IsolationLevel::kSerializable, 1});
    AuditResult parallel = AuditOnly(run.app, run.server.trace, run.server.advice,
                                     VerifierConfig{IsolationLevel::kSerializable, 4});
    EXPECT_EQ(serial.accepted, parallel.accepted);
    EXPECT_EQ(serial.reason, parallel.reason);
    EXPECT_EQ(serial.rule, parallel.rule);
    // An honest run forged this way may only survive if the two requests were
    // genuinely groupable; it must never accept while serial rejects.
    if (!serial.accepted) {
      EXPECT_FALSE(parallel.accepted);
    }
  }
}

TEST(ParallelAdversarialTest, AllRequestsForcedIntoOneGroup) {
  // Collapse every tag to one group: maximum intra-group divergence, zero
  // parallelism. Serial and parallel must agree (reject, in practice).
  HonestRun run = RunMotd(8);
  uint64_t tag = run.server.advice.tags.begin()->second;
  for (auto& [rid, t] : run.server.advice.tags) {
    t = tag;
  }
  AuditResult serial = AuditOnly(run.app, run.server.trace, run.server.advice,
                                 VerifierConfig{IsolationLevel::kSerializable, 1});
  AuditResult parallel = AuditOnly(run.app, run.server.trace, run.server.advice,
                                   VerifierConfig{IsolationLevel::kSerializable, 4});
  EXPECT_EQ(serial.accepted, parallel.accepted);
  EXPECT_EQ(serial.reason, parallel.reason);
}

TEST(ParallelAdversarialTest, EveryRequestItsOwnGroup) {
  // Shatter the grouping: one group per request maximizes group count (and
  // thus scheduler pressure). Still the same result as serial — and honest
  // advice re-tagged this way must still reject or accept identically.
  HonestRun run = RunMotd(8);
  uint64_t tag = 0x9000;
  for (auto& [rid, t] : run.server.advice.tags) {
    t = tag++;
  }
  AuditResult serial = AuditOnly(run.app, run.server.trace, run.server.advice,
                                 VerifierConfig{IsolationLevel::kSerializable, 1});
  AuditResult parallel = AuditOnly(run.app, run.server.trace, run.server.advice,
                                   VerifierConfig{IsolationLevel::kSerializable, 4});
  EXPECT_EQ(serial.accepted, parallel.accepted);
  EXPECT_EQ(serial.reason, parallel.reason);
}

}  // namespace
}  // namespace karousos
