// Re-execution mechanics: multi-handler transactions, conflict-marker
// handling, per-request variables in groups, sibling reordering, and the
// scheduler's reordering model.
#include <gtest/gtest.h>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"

namespace karousos {
namespace {

// A transaction split across two handlers (TxStart+PUT in the request
// handler, GET+commit in the child), exercising TxResume and the
// position-tracking of transaction logs across handler boundaries.
AppSpec MakeSplitTxApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("split_head", [](Ctx& ctx) {
    MultiValue key = MvField(ctx.Input(), "key");
    TxHandle tx = ctx.TxStart();
    bool ok = ctx.TxPut(tx, key, MvField(ctx.Input(), "value"));
    if (!ctx.Branch(MultiValue(ok))) {
      ctx.TxAbort(tx);
      ctx.Respond(MvMakeMap({{"retry", MultiValue(true)}}));
      return;
    }
    ctx.Emit("split_finish", MvMakeMap({{"tid", ctx.TxIdValue(tx)}, {"key", key}}));
  });
  program->DefineFunction("split_finish", [](Ctx& ctx) {
    TxHandle tx = ctx.TxResume(MvField(ctx.Input(), "tid"));
    TxGetResult got = ctx.TxGet(tx, MvField(ctx.Input(), "key"));
    ctx.Branch(MultiValue(got.conflict));
    ctx.Branch(MultiValue(ctx.TxCommit(tx)));
    ctx.Respond(MvMakeMap({{"stored", got.value}}));
  });
  program->SetInit([](Ctx& ctx) {
    ctx.RegisterHandler(kRequestEventName, "split_head");
    ctx.RegisterHandler("split_finish", "split_finish");
  });
  return AppSpec{"splittx", std::move(program)};
}

TEST(ReexecTest, TransactionSplitAcrossHandlersReplays) {
  AppSpec app = MakeSplitTxApp();
  std::vector<Value> inputs;
  for (int i = 0; i < 12; ++i) {
    inputs.push_back(MakeMap({{"key", Value("k" + std::to_string(i % 5))},
                              {"value", Value(int64_t{i})}}));
  }
  for (int concurrency : {1, 6}) {
    ServerConfig config;
    config.concurrency = concurrency;
    AuditPipelineResult result = RunAndAudit(app, inputs, config);
    EXPECT_TRUE(result.audit.accepted)
        << "concurrency " << concurrency << ": " << result.audit.reason;
  }
}

TEST(ReexecTest, SplitTransactionsConflictAndAuditCleanly) {
  // All requests write the same key: X-lock windows span the two handlers,
  // so concurrent requests hit no-wait conflicts, take the retry path, and
  // the audit must still accept (conflict markers replayed from nondet).
  AppSpec app = MakeSplitTxApp();
  std::vector<Value> inputs(20, MakeMap({{"key", "hot"}, {"value", 1}}));
  ServerConfig config;
  config.concurrency = 10;
  config.seed = 4;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_GT(result.server.conflicts, 0u) << "expected lock conflicts under contention";
  int retries = 0;
  for (RequestId rid : result.server.trace.RequestIds()) {
    retries += result.server.trace.Response(rid)->Field("retry").Truthy();
  }
  EXPECT_GT(retries, 0);
}

TEST(ReexecTest, SchedulerReordersSiblingsOnlyUnderConcurrency) {
  // The stacks list fans out children; at concurrency 1 the dispatch loop is
  // FIFO so two identical lists produce identical Orochi sequence tags; under
  // concurrency the sequences scramble while the Karousos tree tags can
  // still coincide.
  auto build_inputs = [] {
    std::vector<Value> inputs;
    for (int i = 0; i < 6; ++i) {
      inputs.push_back(
          MakeMap({{"op", "submit"}, {"dump", Value("d" + std::to_string(i))}}));
    }
    for (int i = 0; i < 10; ++i) {
      inputs.push_back(MakeMap({{"op", "list"}}));
    }
    return inputs;
  };
  // Sequential: every list behaves identically in both tagging schemes.
  {
    AppSpec app = MakeStacksApp();
    ServerConfig config;
    config.mode = CollectMode::kOrochi;
    config.concurrency = 1;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(build_inputs());
    std::set<uint64_t> list_tags;
    for (RequestId rid = 7; rid <= 16; ++rid) {
      list_tags.insert(run.advice.tags.at(rid));
    }
    EXPECT_EQ(list_tags.size(), 1u) << "sequential lists must share one sequence tag";
  }
  // Concurrent: Orochi sequence tags fragment more than Karousos tree tags.
  size_t karousos_tags = 0;
  size_t orochi_tags = 0;
  for (CollectMode mode : {CollectMode::kKarousos, CollectMode::kOrochi}) {
    AppSpec app = MakeStacksApp();
    ServerConfig config;
    config.mode = mode;
    config.concurrency = 8;
    config.seed = 13;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(build_inputs());
    std::set<uint64_t> list_tags;
    for (RequestId rid = 7; rid <= 16; ++rid) {
      list_tags.insert(run.advice.tags.at(rid));
    }
    (mode == CollectMode::kKarousos ? karousos_tags : orochi_tags) = list_tags.size();
  }
  EXPECT_LE(karousos_tags, orochi_tags)
      << "tree tags must never fragment more than sequence tags";
}

TEST(ReexecTest, ServerSchedulingIsDeterministicPerSeed) {
  auto run_once = [](uint64_t seed) {
    AppSpec app = MakeWikiApp();
    std::vector<Value> inputs;
    inputs.push_back(MakeMap(
        {{"op", "create_page"}, {"id", "p"}, {"title", "t"}, {"content", "c"}, {"conn", 0}}));
    for (int i = 0; i < 20; ++i) {
      inputs.push_back(MakeMap({{"op", "render"}, {"page", "p"}, {"conn", i % 4}}));
    }
    ServerConfig config;
    config.concurrency = 4;
    config.seed = seed;
    Server server(*app.program, config);
    return server.Run(inputs).trace;
  };
  Trace a = run_once(9);
  Trace b = run_once(9);
  Trace c = run_once(10);
  ASSERT_EQ(a.events.size(), b.events.size());
  bool same_seed_equal = true;
  for (size_t i = 0; i < a.events.size(); ++i) {
    same_seed_equal &= a.events[i].rid == b.events[i].rid &&
                       a.events[i].payload == b.events[i].payload;
  }
  EXPECT_TRUE(same_seed_equal);
  bool different_seed_differs = c.events.size() != a.events.size();
  for (size_t i = 0; !different_seed_differs && i < a.events.size(); ++i) {
    different_seed_differs = !(a.events[i].rid == c.events[i].rid);
  }
  EXPECT_TRUE(different_seed_differs) << "different seeds should reorder the schedule";
}

TEST(ReexecTest, PerRequestVariablesStayLanePrivate) {
  // Two grouped list requests each own per-request accumulators; their lanes
  // must not bleed into each other. (If they did, responses would mismatch.)
  AppSpec app = MakeStacksApp();
  std::vector<Value> inputs = {
      MakeMap({{"op", "submit"}, {"dump", "alpha"}}),
      MakeMap({{"op", "submit"}, {"dump", "beta"}}),
      MakeMap({{"op", "list"}}),
      MakeMap({{"op", "list"}}),
  };
  ServerConfig config;
  config.concurrency = 1;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  // Both lists were batched into one group (identical trees, sequential).
  EXPECT_EQ(result.server.advice.tags.at(3), result.server.advice.tags.at(4));
}

TEST(ReexecTest, GroupingIdenticalRequestsMaximizesDedup) {
  AppSpec app = MakeSplitTxApp();
  std::vector<Value> inputs(30, MakeMap({{"key", "same"}, {"value", 7}}));
  ServerConfig config;
  config.concurrency = 1;
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  ASSERT_TRUE(result.audit.accepted) << result.audit.reason;
  EXPECT_EQ(result.audit.stats.groups, 1u);
  // Two handlers per request, executed once for the whole group.
  EXPECT_EQ(result.audit.stats.handler_executions, 2u);
  EXPECT_EQ(result.audit.stats.handler_lanes, 60u);
}

}  // namespace
}  // namespace karousos
