#include "src/common/json.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace karousos {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(*ParseJson("null"), Value());
  EXPECT_EQ(*ParseJson("true"), Value(true));
  EXPECT_EQ(*ParseJson("false"), Value(false));
  EXPECT_EQ(*ParseJson("42"), Value(42));
  EXPECT_EQ(*ParseJson("-7"), Value(-7));
  EXPECT_EQ(*ParseJson("2.5"), Value(2.5));
  EXPECT_EQ(*ParseJson("1e3"), Value(1000.0));
  EXPECT_EQ(*ParseJson("\"hi\""), Value("hi"));
}

TEST(JsonTest, Containers) {
  EXPECT_EQ(*ParseJson("[]"), Value(ValueList{}));
  EXPECT_EQ(*ParseJson("{}"), Value(ValueMap{}));
  EXPECT_EQ(*ParseJson("[1, \"a\", null]"), MakeList({1, "a", Value()}));
  EXPECT_EQ(*ParseJson(R"({"b": 2, "a": [true]})"),
            MakeMap({{"a", MakeList({true})}, {"b", 2}}));
  EXPECT_EQ(*ParseJson(R"({"nested": {"deep": [{"x": 1}]}})"),
            MakeMap({{"nested", MakeMap({{"deep", MakeList({MakeMap({{"x", 1}})})}})}}));
}

TEST(JsonTest, Whitespace) {
  EXPECT_EQ(*ParseJson("  [ 1 ,\n\t2 ]  "), MakeList({1, 2}));
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(*ParseJson(R"("a\"b\\c\/d\n\t")"), Value("a\"b\\c/d\n\t"));
  EXPECT_EQ(*ParseJson(R"("Aé")"), Value("A\xc3\xa9"));
  // Surrogate pair: U+1F600.
  EXPECT_EQ(*ParseJson(R"("😀")"), Value("\xf0\x9f\x98\x80"));
}

TEST(JsonTest, Errors) {
  JsonParseError error;
  EXPECT_FALSE(ParseJson("", &error).has_value());
  EXPECT_FALSE(ParseJson("{", &error).has_value());
  EXPECT_FALSE(ParseJson("[1,]", &error).has_value());
  EXPECT_FALSE(ParseJson("\"unterminated", &error).has_value());
  EXPECT_FALSE(ParseJson("nul", &error).has_value());
  EXPECT_FALSE(ParseJson("1 2", &error).has_value());
  EXPECT_FALSE(ParseJson(R"({"a" 1})", &error).has_value());
  EXPECT_FALSE(ParseJson(R"("\q")", &error).has_value());
  EXPECT_FALSE(ParseJson("-", &error).has_value());
  EXPECT_FALSE(error.message.empty());
}

TEST(JsonTest, IntegerOverflowFallsBackToDouble) {
  auto v = ParseJson("123456789012345678901234567890");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_double());
}

TEST(JsonTest, RoundTripsValueToString) {
  // Value::ToString emits JSON; parsing it back must reproduce the value
  // (for values without doubles, whose text form can lose precision).
  Rng rng(99);
  std::function<Value(int)> gen = [&](int depth) -> Value {
    switch (rng.Below(depth > 2 ? 4 : 6)) {
      case 0:
        return Value();
      case 1:
        return Value(rng.Below(2) == 1);
      case 2:
        return Value(static_cast<int64_t>(rng.Next() >> 1));
      case 3:
        return Value("s" + std::to_string(rng.Below(100)));
      case 4: {
        ValueList list;
        for (uint64_t i = 0, n = rng.Below(4); i < n; ++i) {
          list.push_back(gen(depth + 1));
        }
        return Value(std::move(list));
      }
      default: {
        ValueMap map;
        for (uint64_t i = 0, n = rng.Below(4); i < n; ++i) {
          map.emplace("key" + std::to_string(i), gen(depth + 1));
        }
        return Value(std::move(map));
      }
    }
  };
  for (int iter = 0; iter < 100; ++iter) {
    Value original = gen(0);
    auto parsed = ParseJson(original.ToString());
    ASSERT_TRUE(parsed.has_value()) << original.ToString();
    EXPECT_EQ(*parsed, original);
  }
}

}  // namespace
}  // namespace karousos
