#include "src/common/graph.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace karousos {
namespace {

NodeKey K(uint64_t n) { return NodeKey{n, 0, 1}; }

TEST(GraphTest, EmptyAndSingleNode) {
  DirectedGraph g;
  EXPECT_FALSE(g.HasCycle());
  g.AddNode(K(1));
  EXPECT_FALSE(g.HasCycle());
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(GraphTest, SelfLoopIsACycle) {
  DirectedGraph g;
  g.AddEdge(K(1), K(1));
  EXPECT_TRUE(g.HasCycle());
}

TEST(GraphTest, ChainIsAcyclic) {
  DirectedGraph g;
  for (uint64_t i = 0; i < 1000; ++i) {
    g.AddEdge(K(i), K(i + 1));
  }
  EXPECT_FALSE(g.HasCycle());
}

TEST(GraphTest, BackEdgeMakesCycle) {
  DirectedGraph g;
  g.AddEdge(K(1), K(2));
  g.AddEdge(K(2), K(3));
  g.AddEdge(K(3), K(1));
  EXPECT_TRUE(g.HasCycle());
  std::vector<NodeKey> cycle = g.FindCycle();
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(GraphTest, DiamondIsAcyclic) {
  DirectedGraph g;
  g.AddEdge(K(1), K(2));
  g.AddEdge(K(1), K(3));
  g.AddEdge(K(2), K(4));
  g.AddEdge(K(3), K(4));
  EXPECT_FALSE(g.HasCycle());
}

TEST(GraphTest, DisconnectedComponentCycleIsFound) {
  DirectedGraph g;
  g.AddEdge(K(1), K(2));
  g.AddEdge(K(10), K(11));
  g.AddEdge(K(11), K(10));
  EXPECT_TRUE(g.HasCycle());
}

TEST(GraphTest, ParallelEdgesAreNotCycles) {
  DirectedGraph g;
  g.AddEdge(K(1), K(2));
  g.AddEdge(K(1), K(2));
  EXPECT_FALSE(g.HasCycle());
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphTest, InternsKeysOnce) {
  DirectedGraph g;
  auto a = g.AddNode(K(7));
  auto b = g.AddNode(K(7));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(g.HasNode(K(7)));
  EXPECT_FALSE(g.HasNode(K(8)));
  EXPECT_EQ(g.KeyOf(a), K(7));
}

TEST(GraphTest, DeepChainDoesNotOverflowStack) {
  // The iterative DFS must survive graphs far deeper than any call stack.
  DirectedGraph g;
  constexpr uint64_t kDepth = 500000;
  for (uint64_t i = 0; i < kDepth; ++i) {
    g.AddEdge(K(i), K(i + 1));
  }
  EXPECT_FALSE(g.HasCycle());
  g.AddEdge(K(kDepth), K(0));
  EXPECT_TRUE(g.HasCycle());
}

TEST(GraphTest, RandomDagPlusBackEdgeProperty) {
  // Property: edges only from lower to higher ids form a DAG; adding any
  // reverse edge on a connected pair creates a cycle.
  Rng rng(7);
  DirectedGraph g;
  constexpr uint64_t kNodes = 300;
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Below(kNodes);
    uint64_t b = rng.Below(kNodes);
    if (a == b) {
      continue;
    }
    g.AddEdge(K(std::min(a, b)), K(std::max(a, b)));
  }
  EXPECT_FALSE(g.HasCycle());
  g.AddEdge(K(250), K(0));  // 0 -> ... -> 250 exists with high probability.
  g.AddEdge(K(0), K(250));  // Ensure the forward path exists regardless.
  EXPECT_TRUE(g.HasCycle());
}

}  // namespace
}  // namespace karousos
