// Unit tests for the work-stealing pool underneath the parallel audit engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/pool.h"

namespace karousos {
namespace {

TEST(PoolTest, RunsEveryIndexExactlyOnce) {
  WorkStealingPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(PoolTest, SingleThreadDegeneratesToInlineLoop) {
  WorkStealingPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> order;
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(8, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);  // Inline path preserves index order.
  }
}

TEST(PoolTest, EmptyRangeIsANoop) {
  WorkStealingPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "task ran for an empty range"; });
}

TEST(PoolTest, SkewedTasksAreStolen) {
  // Index 0 sleeps; the rest are instant. With stealing, total wall clock
  // stays near the single sleep instead of serializing behind worker 0's
  // initial share.
  WorkStealingPool pool(4);
  std::atomic<int> done{0};
  auto t0 = std::chrono::steady_clock::now();
  pool.ParallelFor(64, [&](size_t i) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    done.fetch_add(1);
  });
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(done.load(), 64);
  // Generous bound: the 63 instant tasks must not queue behind the sleeper.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000);
}

TEST(PoolTest, ReusableAcrossJobs) {
  WorkStealingPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u) << "round " << round;
  }
}

TEST(PoolTest, ManyMoreTasksThanThreads) {
  WorkStealingPool pool(2);
  std::atomic<size_t> count{0};
  pool.ParallelFor(10000, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10000u);
}

TEST(PoolTest, ResolveThreads) {
  EXPECT_EQ(WorkStealingPool::ResolveThreads(1), 1u);
  EXPECT_EQ(WorkStealingPool::ResolveThreads(7), 7u);
  EXPECT_GE(WorkStealingPool::ResolveThreads(0), 1u);  // 0 = hardware threads.
}

TEST(PoolTest, CallerParticipates) {
  // Two participants, two tasks that each wait for the other to start: no
  // single thread can run both, so the caller must execute exactly one (it
  // drains work rather than idling until the worker finishes). Robust on
  // any core count, including one.
  WorkStealingPool pool(2);
  std::atomic<int> started{0};
  std::atomic<int> by_caller{0};
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(2, [&](size_t) {
    started.fetch_add(1);
    while (started.load() < 2) {
      std::this_thread::yield();
    }
    if (std::this_thread::get_id() == caller) {
      by_caller.fetch_add(1);
    }
  });
  EXPECT_EQ(by_caller.load(), 1);
}

}  // namespace
}  // namespace karousos
