// Online-server tests: trace shape, advice shape, determinism across
// instrumentation modes, and the behaviour of the model applications.
#include "src/server/server.h"

#include <gtest/gtest.h>

#include "src/apps/app.h"
#include "src/common/value.h"

namespace karousos {
namespace {

std::vector<Value> MotdInputs() {
  return {
      MakeMap({{"op", "set"}, {"day", "mon"}, {"msg", "hello monday"}}),
      MakeMap({{"op", "get"}, {"day", "mon"}}),
      MakeMap({{"op", "get"}, {"day", "tue"}}),
      MakeMap({{"op", "set"}, {"day", "every"}, {"msg", "default"}}),
      MakeMap({{"op", "get"}, {"day", "tue"}}),
  };
}

TEST(ServerTest, MotdSequentialResponses) {
  AppSpec app = MakeMotdApp();
  ServerConfig config;
  config.concurrency = 1;
  Server server(*app.program, config);
  ServerRunResult result = server.Run(MotdInputs());

  std::string reason;
  EXPECT_TRUE(result.trace.IsBalanced(&reason)) << reason;
  ASSERT_EQ(result.trace.request_count(), 5u);
  EXPECT_EQ(result.trace.Response(2)->Field("msg"), Value("hello monday"));
  EXPECT_EQ(result.trace.Response(3)->Field("msg"), Value("no message"));
  EXPECT_EQ(result.trace.Response(5)->Field("msg"), Value("default"));
  // The rendered etag is deterministic: equal messages yield equal etags.
  EXPECT_EQ(result.trace.Response(3)->Field("etag"), result.trace.Response(3)->Field("etag"));
}

TEST(ServerTest, MotdAdviceLogsAllAccesses) {
  // Every MOTD handler is a request handler (child of I), so all accesses to
  // the shared hashmap are R-concurrent and must be logged (§6.2).
  AppSpec app = MakeMotdApp();
  ServerConfig config;
  config.concurrency = 4;
  Server server(*app.program, config);
  ServerRunResult result = server.Run(MotdInputs());
  // Every request issues one read (sets also one write); accesses whose
  // dictating/preceding write is the init handler's are R-ordered (I precedes
  // everything) and stay unlogged, everything else is logged.
  EXPECT_EQ(result.advice.var_logs.size(), 1u);
  EXPECT_GE(result.advice.var_log_entry_count(), 5u);
  EXPECT_EQ(result.advice.tags.size(), 5u);
  EXPECT_EQ(result.advice.response_emitted_by.size(), 5u);
}

TEST(ServerTest, ModeDoesNotChangeTraceOrResponses) {
  // The same seed must produce identical schedules and responses across
  // unmodified / Karousos / Orochi servers, or mode comparisons would be
  // measuring different executions.
  AppSpec app = MakeStacksApp();
  std::vector<Value> inputs;
  for (int i = 0; i < 40; ++i) {
    switch (i % 4) {
      case 0:
      case 1:
        inputs.push_back(MakeMap({{"op", "submit"}, {"dump", Value("trace" + std::to_string(i % 6))}}));
        break;
      case 2:
        inputs.push_back(MakeMap({{"op", "count"}, {"dump", Value("trace" + std::to_string(i % 6))}}));
        break;
      default:
        inputs.push_back(MakeMap({{"op", "list"}}));
    }
  }
  std::vector<Trace> traces;
  for (CollectMode mode : {CollectMode::kOff, CollectMode::kKarousos, CollectMode::kOrochi}) {
    AppSpec fresh = MakeStacksApp();
    ServerConfig config;
    config.mode = mode;
    config.concurrency = 8;
    config.seed = 7;
    Server server(*fresh.program, config);
    traces.push_back(server.Run(inputs).trace);
  }
  ASSERT_EQ(traces[0].events.size(), traces[1].events.size());
  for (size_t i = 0; i < traces[0].events.size(); ++i) {
    EXPECT_EQ(traces[0].events[i].kind, traces[1].events[i].kind);
    EXPECT_EQ(traces[0].events[i].rid, traces[1].events[i].rid);
    EXPECT_EQ(traces[0].events[i].payload, traces[1].events[i].payload);
    EXPECT_EQ(traces[1].events[i].payload, traces[2].events[i].payload);
  }
}

TEST(ServerTest, StacksSubmitCountList) {
  AppSpec app = MakeStacksApp();
  std::vector<Value> inputs = {
      MakeMap({{"op", "submit"}, {"dump", "stack A"}}),
      MakeMap({{"op", "submit"}, {"dump", "stack A"}}),
      MakeMap({{"op", "submit"}, {"dump", "stack B"}}),
      MakeMap({{"op", "count"}, {"dump", "stack A"}}),
      MakeMap({{"op", "list"}}),
  };
  ServerConfig config;
  config.concurrency = 1;  // Sequential: no retries possible.
  Server server(*app.program, config);
  ServerRunResult result = server.Run(inputs);
  std::string reason;
  ASSERT_TRUE(result.trace.IsBalanced(&reason)) << reason;
  EXPECT_EQ(result.trace.Response(1)->Field("new"), Value(true));
  EXPECT_EQ(result.trace.Response(2)->Field("new"), Value(false));
  EXPECT_EQ(result.trace.Response(4)->Field("count"), Value(int64_t{2}));
  Value list_response = *result.trace.Response(5);
  const Value& dumps = list_response.Field("dumps");
  ASSERT_TRUE(dumps.is_list());
  EXPECT_EQ(dumps.AsList().size(), 2u);
}

TEST(ServerTest, StacksConcurrentSameDumpHitsRetryGuard) {
  AppSpec app = MakeStacksApp();
  std::vector<Value> inputs;
  for (int i = 0; i < 30; ++i) {
    inputs.push_back(MakeMap({{"op", "submit"}, {"dump", "hot dump"}}));
  }
  ServerConfig config;
  config.concurrency = 10;
  config.seed = 3;
  Server server(*app.program, config);
  ServerRunResult result = server.Run(inputs);
  std::string reason;
  ASSERT_TRUE(result.trace.IsBalanced(&reason)) << reason;
  int retries = 0;
  int oks = 0;
  for (RequestId rid : result.trace.RequestIds()) {
    Value response = *result.trace.Response(rid);
    if (response.Field("retry").Truthy()) {
      ++retries;
    } else if (response.Field("ok").Truthy()) {
      ++oks;
    }
  }
  EXPECT_GT(retries, 0) << "concurrent same-dump submits should trip the in-flight guard";
  EXPECT_GT(oks, 0);
  EXPECT_EQ(retries + oks, 30);
}

TEST(ServerTest, WikiEndToEnd) {
  AppSpec app = MakeWikiApp();
  std::vector<Value> inputs = {
      MakeMap({{"op", "create_page"}, {"id", "p1"}, {"title", "T"}, {"content", "C"}, {"conn", 0}}),
      MakeMap({{"op", "render"}, {"page", "p1"}, {"conn", 0}}),
      MakeMap({{"op", "render"}, {"page", "p1"}, {"conn", 0}}),
      MakeMap({{"op", "create_comment"}, {"page", "p1"}, {"text", "nice"}, {"conn", 0}}),
      MakeMap({{"op", "render"}, {"page", "p1"}, {"conn", 0}}),
      MakeMap({{"op", "render"}, {"page", "nope"}, {"conn", 0}}),
  };
  ServerConfig config;
  config.concurrency = 1;
  Server server(*app.program, config);
  ServerRunResult result = server.Run(inputs);
  std::string reason;
  ASSERT_TRUE(result.trace.IsBalanced(&reason)) << reason;
  EXPECT_EQ(result.trace.Response(2)->Field("cached"), Value(false));
  EXPECT_EQ(result.trace.Response(3)->Field("cached"), Value(true));
  // The comment invalidates the cache; the next render recomputes.
  EXPECT_EQ(result.trace.Response(5)->Field("cached"), Value(false));
  EXPECT_NE(result.trace.Response(5)->Field("html").AsString().find("nice"), std::string::npos);
  // Rendering a nonexistent page produces an empty shell (the parallel
  // fetches find nothing), not a crash.
  EXPECT_NE(result.trace.Response(6)->Field("html").AsString().find("<h1></h1>"),
            std::string::npos);
}

TEST(ServerTest, PingpongHandlerTreeAdvice) {
  AppSpec app = MakePingpongApp();
  ServerConfig config;
  config.concurrency = 2;
  Server server(*app.program, config);
  ServerRunResult result = server.Run({MakeMap({{"n", 1}}), MakeMap({{"n", 5}})});
  EXPECT_EQ(*result.trace.Response(1), MakeMap({{"n", 3}}));
  EXPECT_EQ(*result.trace.Response(2), MakeMap({{"n", 7}}));
  // Two handlers per request -> 4 opcount entries; one emit each -> one
  // handler-log entry per request.
  EXPECT_EQ(result.advice.opcounts.size(), 4u);
  EXPECT_EQ(result.advice.handler_log_entry_count(), 2u);
  // Same structure and control flow -> same tag.
  EXPECT_EQ(result.advice.tags.at(1), result.advice.tags.at(2));
}

TEST(ServerTest, AdviceRoundTripsThroughWireFormat) {
  AppSpec app = MakeStacksApp();
  std::vector<Value> inputs = {
      MakeMap({{"op", "submit"}, {"dump", "x"}}),
      MakeMap({{"op", "list"}}),
      MakeMap({{"op", "count"}, {"dump", "x"}}),
  };
  ServerConfig config;
  config.concurrency = 3;
  Server server(*app.program, config);
  ServerRunResult result = server.Run(inputs);
  ByteWriter writer;
  result.advice.Serialize(&writer);
  ByteReader reader(writer.bytes());
  auto decoded = Advice::Deserialize(&reader);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(decoded->tags, result.advice.tags);
  EXPECT_EQ(decoded->opcounts, result.advice.opcounts);
  EXPECT_EQ(decoded->write_order, result.advice.write_order);
  EXPECT_EQ(decoded->var_log_entry_count(), result.advice.var_log_entry_count());
  EXPECT_EQ(decoded->handler_log_entry_count(), result.advice.handler_log_entry_count());
}

}  // namespace
}  // namespace karousos
