// Corruption hardening for the segment container: a truncated or bit-flipped
// segment file is indistinguishable from server misbehavior, so decoding must
// fail cleanly (an error string, never a crash or out-of-bounds read — this
// test is part of the asan suite). Truncation is exercised at every byte
// length; bit flips at every bit of every byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/common/segment.h"
#include "src/common/serde.h"

namespace karousos {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// A three-frame container exercising all kinds, a multi-byte epoch varint
// (epoch 300), and an empty payload.
std::vector<uint8_t> MakeContainer() {
  SegmentWriter writer;
  writer.Append(SegmentKind::kTrace, 0, Bytes("first window payload"));
  writer.Append(SegmentKind::kAdvice, 300, Bytes("advice"));
  writer.Append(SegmentKind::kCheckpoint, 1, {});
  return writer.Take();
}

// Drains the reader; returns frame count, or -1 when the stream errored.
int Drain(const std::vector<uint8_t>& bytes) {
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  if (reader == nullptr) {
    EXPECT_FALSE(error.empty());
    return -1;
  }
  SegmentRecord rec;
  int frames = 0;
  while (reader->Next(&rec)) {
    // Whatever the reader yields must satisfy the container's own checksum
    // contract: payload bytes match the stored CRC.
    EXPECT_EQ(rec.crc, Crc32(rec.payload));
    ++frames;
  }
  if (!reader->ok()) {
    EXPECT_FALSE(reader->error().empty());
    return -1;
  }
  return frames;
}

TEST(SegmentCorruptionTest, TruncationAtEveryByteFailsCleanly) {
  std::vector<uint8_t> full = MakeContainer();
  ASSERT_EQ(Drain(full), 3);

  // Frame boundaries: byte offsets at which a cut leaves a well-formed
  // (shorter) container. Everything else must error.
  std::set<size_t> clean_cuts;
  {
    std::string error;
    auto reader = SegmentReader::FromBytes(full.data(), full.size(), &error);
    ASSERT_NE(reader, nullptr);
    SegmentRecord rec;
    while (reader->Next(&rec)) {
      clean_cuts.insert(static_cast<size_t>(rec.offset));
    }
    clean_cuts.insert(full.size());
  }

  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<uint8_t> truncated(full.begin(), full.begin() + cut);
    int frames = Drain(truncated);
    if (clean_cuts.count(cut) != 0) {
      EXPECT_GE(frames, 0) << "clean frame boundary at " << cut << " errored";
    } else {
      EXPECT_EQ(frames, -1) << "mid-frame truncation at " << cut << " not detected";
    }
  }
}

TEST(SegmentCorruptionTest, BitFlipAtEveryPositionFailsCleanlyOrIsCaught) {
  std::vector<uint8_t> full = MakeContainer();
  const size_t header = sizeof(kSegmentMagic) + 1;

  // Payload and CRC byte ranges, where a flip MUST produce a hard error (the
  // checksum seals them). Flips in kind/epoch/length bytes may instead
  // re-frame the stream; there the requirement is only a clean outcome —
  // either an error or frames that still satisfy the CRC contract (asserted
  // inside Drain) — never a crash or overread.
  // A frame is kind + epoch varint + length varint + crc(4) + payload, so
  // each frame's sealed bytes are the last 4 + |payload| before the next
  // frame's offset (or the file end).
  std::set<size_t> sealed;
  {
    std::string error;
    auto reader = SegmentReader::FromBytes(full.data(), full.size(), &error);
    ASSERT_NE(reader, nullptr);
    std::vector<size_t> offsets;
    std::vector<size_t> payload_sizes;
    SegmentRecord rec;
    while (reader->Next(&rec)) {
      offsets.push_back(static_cast<size_t>(rec.offset));
      payload_sizes.push_back(rec.payload.size());
    }
    offsets.push_back(full.size());
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      size_t sealed_begin = offsets[i + 1] - payload_sizes[i] - 4;
      for (size_t b = sealed_begin; b < offsets[i + 1]; ++b) {
        sealed.insert(b);
      }
    }
  }

  for (size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = full;
      flipped[byte] = static_cast<uint8_t>(flipped[byte] ^ (1u << bit));
      int frames = Drain(flipped);
      if (byte < header) {
        EXPECT_EQ(frames, -1) << "header flip at byte " << byte << " bit " << bit
                              << " not detected";
      } else if (sealed.count(byte) != 0) {
        EXPECT_EQ(frames, -1) << "sealed-region flip at byte " << byte << " bit " << bit
                              << " survived the CRC";
      }
      // Framing-byte flips: Drain already asserted no crash and CRC-valid
      // payloads for whatever was yielded.
    }
  }
}

TEST(SegmentCorruptionTest, EmptyAndHeaderOnlyInputs) {
  EXPECT_EQ(Drain({}), -1);
  std::vector<uint8_t> header = {'K', 'S', 'E', 'G', kSegmentFormatVersion};
  EXPECT_EQ(Drain(header), 0);  // A container with zero frames is valid.
  header.pop_back();
  EXPECT_EQ(Drain(header), -1);  // Magic without a version byte is not.
}

TEST(SegmentCorruptionTest, DeclaredLengthBeyondFileIsRejected) {
  SegmentWriter writer;
  writer.Append(SegmentKind::kTrace, 0, Bytes("payload"));
  std::vector<uint8_t> bytes = writer.Take();
  // Frame layout after the 5-byte header: kind, epoch, length, crc, payload.
  // Inflate the declared length far past the file size.
  bytes[7] = 0x7f;
  EXPECT_EQ(Drain(bytes), -1);
}

}  // namespace
}  // namespace karousos
